//! The `pcpm-serve` wire protocol: framing, request/response types and
//! their binary codecs.
//!
//! # Frame layout
//!
//! Every message (either direction) travels in one frame:
//!
//! ```text
//! length   4 B   little-endian byte length of the body that follows
//! version  2 B   protocol version (currently 1)
//! kind     1 B   request or response kind (see below)
//! payload  ...   kind-specific body, little-endian throughout
//! ```
//!
//! Frames larger than [`MAX_FRAME_BYTES`] are rejected before any
//! allocation happens, so a corrupt length prefix cannot OOM the peer.
//! A version the server does not understand earns a typed
//! [`Response::Error`] with [`ErrorCode::UnsupportedVersion`] rather
//! than a dropped connection.
//!
//! # Request kinds
//!
//! | kind | request | payload |
//! |------|---------|---------|
//! | 0 | `health` | empty |
//! | 1 | `stats` | empty |
//! | 2 | `pagerank` | engine `u16`, [`QueryParams`] |
//! | 3 | `personalized_pagerank` | engine `u16`, [`QueryParams`], seed count `u32`, seeds `u32`× |
//! | 4 | `bfs` | engine `u16`, source `u32` |
//! | 5 | `sssp` | engine `u16`, source `u32` |
//! | 6 | `update` | engine `u16`, an [`UpdateBatch::to_bytes`] blob |
//! | 7 | `shutdown` | empty |
//!
//! [`QueryParams`] is `iterations u32, damping f64, has_tolerance u8,
//! tolerance f64, redistribute_dangling u8` — the same knobs the
//! offline CLI exposes, so a served answer can be diffed bit-for-bit
//! against `pcpm pagerank` on the same graph.
//!
//! # Response kinds
//!
//! | kind | response | payload |
//! |------|----------|---------|
//! | 0 | `health` | epoch `u64`, engine count `u16` |
//! | 1 | `stats` | see [`ServerStats`] |
//! | 2 | `ranks` | epoch `u64`, iterations `u32`, converged `u8`, count `u32`, scores `f32`× |
//! | 3 | `levels` | epoch `u64`, count `u32`, levels `u32`× |
//! | 4 | `distances` | epoch `u64`, count `u32`, distances `f32`× |
//! | 5 | `updated` | epoch `u64`, mode `u8`, rebuilt `u32`, total `u32`, applied `u32`, ignored `u32` |
//! | 6 | `shutdown_ack` | epoch `u64` |
//! | 7 | `error` | code `u8`, message length `u32`, UTF-8 message |
//!
//! # Epoch semantics
//!
//! Every data-carrying response is tagged with the **epoch** of the
//! serving state it was computed against. The server starts at epoch 0;
//! each applied update batch publishes epoch `e+1` atomically (readers
//! holding epoch `e` state finish against `e` — they are never blocked
//! and never observe a half-applied batch). A client that needs
//! read-your-writes simply waits until `health` reports the epoch its
//! `update` response returned.
//!
//! # Server-side PPR batching
//!
//! `personalized_pagerank` requests that are in flight on several
//! workers at once and share the same `(engine, QueryParams)` key may
//! be **coalesced** server-side into one batched engine pass (one scan
//! of the destID bin stream per power iteration for the whole batch).
//! This is invisible on the wire: it needs no protocol support, every
//! request still receives its own `ranks` response, and the batched
//! solver is bit-identical to the sequential one, so the scores,
//! iteration count and convergence flag are exactly what a solo pass
//! at the same epoch would have produced. The epoch tag on the
//! response names the serving state the (possibly shared) pass ran
//! against, as always. Coalescing is opportunistic — a lone request is
//! simply a batch of one — and requests whose seed sets fail
//! validation are answered individually with `BadQuery` without
//! poisoning their batchmates.

use pcpm_core::{RepairStats, UpdateBatch, UpdateOutcome};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame body; larger length prefixes are rejected
/// before allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 26; // 64 MiB

/// Latency-histogram bucket count: bucket `i` holds requests that took
/// less than `2^i` microseconds; the last bucket absorbs the rest.
pub const NUM_LATENCY_BUCKETS: usize = 20;

/// Number of distinct request kinds (for per-kind metric arrays).
pub const NUM_REQUEST_KINDS: usize = 8;

/// Human-readable request-kind names, indexed by wire kind.
pub const REQUEST_KIND_NAMES: [&str; NUM_REQUEST_KINDS] = [
    "health",
    "stats",
    "pagerank",
    "personalized_pagerank",
    "bfs",
    "sssp",
    "update",
    "shutdown",
];

/// Typed error codes carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame or payload could not be decoded.
    BadFrame = 1,
    /// The request's protocol version is not supported.
    UnsupportedVersion = 2,
    /// The request referenced an engine index the server does not hold.
    UnknownEngine = 3,
    /// The query itself is invalid (empty seed set, source out of
    /// range, bad iteration count...).
    BadQuery = 4,
    /// The operation is not supported on this engine (e.g. `sssp` on an
    /// unweighted snapshot, `update` on a weighted one).
    Unsupported = 5,
    /// The server is draining and refuses new work.
    ShuttingDown = 6,
    /// Internal engine failure.
    Internal = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Self::BadFrame,
            2 => Self::UnsupportedVersion,
            3 => Self::UnknownEngine,
            4 => Self::BadQuery,
            5 => Self::Unsupported,
            6 => Self::ShuttingDown,
            7 => Self::Internal,
            _ => return None,
        })
    }
}

/// PageRank-family query knobs, mirroring the offline CLI flags.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryParams {
    /// Iteration cap.
    pub iterations: u32,
    /// Damping factor.
    pub damping: f64,
    /// Convergence tolerance (run to the cap when `None`).
    pub tolerance: Option<f64>,
    /// Spread dangling mass uniformly (global PageRank only).
    pub redistribute_dangling: bool,
}

impl Default for QueryParams {
    fn default() -> Self {
        // Matches `PcpmConfig::default()` so an unconfigured query and
        // an unconfigured CLI run agree.
        Self {
            iterations: 20,
            damping: 0.85,
            tolerance: None,
            redistribute_dangling: false,
        }
    }
}

impl QueryParams {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.iterations.to_le_bytes());
        buf.extend_from_slice(&self.damping.to_le_bytes());
        buf.push(u8::from(self.tolerance.is_some()));
        buf.extend_from_slice(&self.tolerance.unwrap_or(0.0).to_le_bytes());
        buf.push(u8::from(self.redistribute_dangling));
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self, ProtoError> {
        let iterations = cur.u32()?;
        let damping = cur.f64()?;
        let has_tol = cur.u8()? != 0;
        let tol = cur.f64()?;
        let redistribute_dangling = cur.u8()? != 0;
        Ok(Self {
            iterations,
            damping,
            tolerance: has_tol.then_some(tol),
            redistribute_dangling,
        })
    }
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness + current epoch.
    Health,
    /// Per-request metrics and engine provenance.
    Stats,
    /// Global PageRank on engine `engine`.
    Pagerank {
        /// Engine index (serve-order of the snapshot arguments).
        engine: u16,
        /// Query knobs.
        params: QueryParams,
    },
    /// Personalized PageRank restarted at `seeds`.
    Ppr {
        /// Engine index.
        engine: u16,
        /// Query knobs.
        params: QueryParams,
        /// Non-empty seed set.
        seeds: Vec<u32>,
    },
    /// BFS hop counts from `source`.
    Bfs {
        /// Engine index.
        engine: u16,
        /// Source node.
        source: u32,
    },
    /// Shortest-path distances from `source` (weighted engines only).
    Sssp {
        /// Engine index.
        engine: u16,
        /// Source node.
        source: u32,
    },
    /// Apply an edge-update batch and publish a new epoch.
    Update {
        /// Engine index.
        engine: u16,
        /// The batch to apply.
        batch: UpdateBatch,
    },
    /// Drain in-flight work and exit.
    Shutdown,
}

impl Request {
    /// The wire kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Request::Health => 0,
            Request::Stats => 1,
            Request::Pagerank { .. } => 2,
            Request::Ppr { .. } => 3,
            Request::Bfs { .. } => 4,
            Request::Sssp { .. } => 5,
            Request::Update { .. } => 6,
            Request::Shutdown => 7,
        }
    }

    /// Serializes the payload (everything after the kind byte).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Health | Request::Stats | Request::Shutdown => {}
            Request::Pagerank { engine, params } => {
                buf.extend_from_slice(&engine.to_le_bytes());
                params.encode(&mut buf);
            }
            Request::Ppr {
                engine,
                params,
                seeds,
            } => {
                buf.extend_from_slice(&engine.to_le_bytes());
                params.encode(&mut buf);
                buf.extend_from_slice(&(seeds.len() as u32).to_le_bytes());
                for &s in seeds {
                    buf.extend_from_slice(&s.to_le_bytes());
                }
            }
            Request::Bfs { engine, source } | Request::Sssp { engine, source } => {
                buf.extend_from_slice(&engine.to_le_bytes());
                buf.extend_from_slice(&source.to_le_bytes());
            }
            Request::Update { engine, batch } => {
                buf.extend_from_slice(&engine.to_le_bytes());
                buf.extend_from_slice(&batch.to_bytes());
            }
        }
        buf
    }

    /// Decodes a request from its kind byte and payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        let mut cur = Cursor { data: payload };
        let req = match kind {
            0 => Request::Health,
            1 => Request::Stats,
            2 => Request::Pagerank {
                engine: cur.u16()?,
                params: QueryParams::decode(&mut cur)?,
            },
            3 => {
                let engine = cur.u16()?;
                let params = QueryParams::decode(&mut cur)?;
                let n = cur.u32()? as usize;
                if n > payload.len() {
                    return Err(ProtoError("seed count exceeds payload".into()));
                }
                let mut seeds = Vec::with_capacity(n);
                for _ in 0..n {
                    seeds.push(cur.u32()?);
                }
                Request::Ppr {
                    engine,
                    params,
                    seeds,
                }
            }
            4 => Request::Bfs {
                engine: cur.u16()?,
                source: cur.u32()?,
            },
            5 => Request::Sssp {
                engine: cur.u16()?,
                source: cur.u32()?,
            },
            6 => {
                let engine = cur.u16()?;
                let batch = UpdateBatch::from_bytes(cur.rest())
                    .map_err(|e| ProtoError(format!("update batch: {e}")))?;
                return Ok(Request::Update { engine, batch });
            }
            7 => Request::Shutdown,
            other => return Err(ProtoError(format!("unknown request kind {other}"))),
        };
        cur.expect_empty()?;
        Ok(req)
    }
}

/// How the server absorbed an update batch, on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReply {
    /// The newly published epoch (responses at this epoch include the
    /// batch).
    pub epoch: u64,
    /// Incremental repair vs full rebuild, with partition counts.
    pub outcome: UpdateOutcome,
    /// Effective ops applied after set-semantics filtering.
    pub applied: u32,
    /// Requested ops that were no-ops against the current edge set.
    pub ignored: u32,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Liveness: current epoch and engine count.
    Health {
        /// Current serving epoch.
        epoch: u64,
        /// Number of loaded engines.
        engines: u16,
    },
    /// Metrics + provenance snapshot.
    Stats(Box<ServerStats>),
    /// PageRank / PPR scores.
    Ranks {
        /// Epoch the scores were computed against.
        epoch: u64,
        /// Iterations the solver ran.
        iterations: u32,
        /// Whether it converged before the cap.
        converged: bool,
        /// Per-node scores.
        scores: Vec<f32>,
    },
    /// BFS levels (`u32::MAX` = unreached).
    Levels {
        /// Epoch the levels were computed against.
        epoch: u64,
        /// Per-node hop counts.
        levels: Vec<u32>,
    },
    /// SSSP distances (`f32::INFINITY` = unreachable).
    Distances {
        /// Epoch the distances were computed against.
        epoch: u64,
        /// Per-node distances.
        distances: Vec<f32>,
    },
    /// Update applied and published.
    Updated(UpdateReply),
    /// The server acknowledged a shutdown request and is draining.
    ShutdownAck {
        /// Epoch at shutdown.
        epoch: u64,
    },
    /// Typed failure; the connection stays usable.
    Error {
        /// What went wrong, machine-readable.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The wire kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Response::Health { .. } => 0,
            Response::Stats(_) => 1,
            Response::Ranks { .. } => 2,
            Response::Levels { .. } => 3,
            Response::Distances { .. } => 4,
            Response::Updated(_) => 5,
            Response::ShutdownAck { .. } => 6,
            Response::Error { .. } => 7,
        }
    }

    /// Serializes the payload (everything after the kind byte).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Health { epoch, engines } => {
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&engines.to_le_bytes());
            }
            Response::Stats(stats) => stats.encode(&mut buf),
            Response::Ranks {
                epoch,
                iterations,
                converged,
                scores,
            } => {
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&iterations.to_le_bytes());
                buf.push(u8::from(*converged));
                buf.extend_from_slice(&(scores.len() as u32).to_le_bytes());
                for &s in scores {
                    buf.extend_from_slice(&s.to_le_bytes());
                }
            }
            Response::Levels { epoch, levels } => {
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&(levels.len() as u32).to_le_bytes());
                for &l in levels {
                    buf.extend_from_slice(&l.to_le_bytes());
                }
            }
            Response::Distances { epoch, distances } => {
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&(distances.len() as u32).to_le_bytes());
                for &d in distances {
                    buf.extend_from_slice(&d.to_le_bytes());
                }
            }
            Response::Updated(u) => {
                buf.extend_from_slice(&u.epoch.to_le_bytes());
                let (mode, stats) = match u.outcome {
                    UpdateOutcome::Repaired(s) => (0u8, s),
                    UpdateOutcome::Rebuilt => (
                        1u8,
                        RepairStats {
                            partitions_rebuilt: 0,
                            partitions_total: 0,
                        },
                    ),
                };
                buf.push(mode);
                buf.extend_from_slice(&stats.to_bytes());
                buf.extend_from_slice(&u.applied.to_le_bytes());
                buf.extend_from_slice(&u.ignored.to_le_bytes());
            }
            Response::ShutdownAck { epoch } => {
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
            Response::Error { code, message } => {
                buf.push(*code as u8);
                buf.extend_from_slice(&(message.len() as u32).to_le_bytes());
                buf.extend_from_slice(message.as_bytes());
            }
        }
        buf
    }

    /// Decodes a response from its kind byte and payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, ProtoError> {
        let mut cur = Cursor { data: payload };
        let resp = match kind {
            0 => Response::Health {
                epoch: cur.u64()?,
                engines: cur.u16()?,
            },
            1 => Response::Stats(Box::new(ServerStats::decode(&mut cur)?)),
            2 => {
                let epoch = cur.u64()?;
                let iterations = cur.u32()?;
                let converged = cur.u8()? != 0;
                let scores = cur.f32_vec()?;
                Response::Ranks {
                    epoch,
                    iterations,
                    converged,
                    scores,
                }
            }
            3 => {
                let epoch = cur.u64()?;
                let levels = cur.u32_vec()?;
                Response::Levels { epoch, levels }
            }
            4 => {
                let epoch = cur.u64()?;
                let distances = cur.f32_vec()?;
                Response::Distances { epoch, distances }
            }
            5 => {
                let epoch = cur.u64()?;
                let mode = cur.u8()?;
                let stats = RepairStats::from_bytes(cur.bytes(8)?)
                    .map_err(|e| ProtoError(e.to_string()))?;
                let applied = cur.u32()?;
                let ignored = cur.u32()?;
                let outcome = match mode {
                    0 => UpdateOutcome::Repaired(stats),
                    1 => UpdateOutcome::Rebuilt,
                    other => return Err(ProtoError(format!("unknown update mode {other}"))),
                };
                Response::Updated(UpdateReply {
                    epoch,
                    outcome,
                    applied,
                    ignored,
                })
            }
            6 => Response::ShutdownAck { epoch: cur.u64()? },
            7 => {
                let code = ErrorCode::from_u8(cur.u8()?)
                    .ok_or_else(|| ProtoError("unknown error code".into()))?;
                let message = cur.string()?;
                Response::Error { code, message }
            }
            other => return Err(ProtoError(format!("unknown response kind {other}"))),
        };
        cur.expect_empty()?;
        Ok(resp)
    }
}

/// Per-request-kind counters and a fixed-bucket latency histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryStat {
    /// Wire kind this row covers.
    pub kind: u8,
    /// Requests handled (including ones answered with a typed error).
    pub count: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Total handler execution time across all requests, microseconds.
    pub exec_us_total: u64,
    /// `buckets[i]` counts requests that took `< 2^i` microseconds
    /// (and at least `2^(i-1)`); the last bucket absorbs the rest.
    pub buckets: [u64; NUM_LATENCY_BUCKETS],
}

impl QueryStat {
    /// The request-kind name for this row.
    pub fn name(&self) -> &'static str {
        REQUEST_KIND_NAMES
            .get(self.kind as usize)
            .copied()
            .unwrap_or("unknown")
    }

    /// Upper bound (µs) of the histogram bucket containing quantile
    /// `q ∈ [0, 1]`, or `None` when the row is empty.
    pub fn quantile_upper_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << (NUM_LATENCY_BUCKETS - 1))
    }

    /// Fraction of requests answered with a typed error, in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.errors as f64 / self.count as f64
        }
    }

    /// Mean handler execution time in microseconds.
    pub fn mean_exec_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.exec_us_total as f64 / self.count as f64
        }
    }
}

/// One entry of the bounded slow-query ring: a request whose handler
/// exceeded the server's slow threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQuery {
    /// Wire request kind.
    pub kind: u8,
    /// Handler execution time, microseconds.
    pub exec_us: u64,
    /// Serving epoch the request ran against.
    pub epoch: u64,
}

impl SlowQuery {
    /// The request-kind name for this entry.
    pub fn name(&self) -> &'static str {
        REQUEST_KIND_NAMES
            .get(self.kind as usize)
            .copied()
            .unwrap_or("unknown")
    }
}

/// Provenance of one loaded engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineInfo {
    /// Snapshot path (or a synthetic label for in-memory engines).
    pub path: String,
    /// Snapshot decode + rehydration wall-clock at load.
    pub load: Duration,
    /// Node count.
    pub nodes: u32,
    /// Edge count at the current epoch.
    pub edges: u64,
    /// Whether the bins carry edge weights.
    pub weighted: bool,
    /// Bin encoding name (`wide` / `compact` / `delta`).
    pub bin_format: String,
    /// Partition size in bytes.
    pub partition_bytes: u64,
}

/// The `stats` response body: epoch, uptime, per-kind metrics, engine
/// provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// Current serving epoch.
    pub epoch: u64,
    /// Time since the server started.
    pub uptime: Duration,
    /// One row per request kind (indexed by wire kind).
    pub queries: Vec<QueryStat>,
    /// One row per loaded engine.
    pub engines: Vec<EngineInfo>,
    /// Total time connections spent queued between accept and worker
    /// dispatch, microseconds.
    pub queue_wait_us_total: u64,
    /// Connections handed from the acceptor to a worker.
    pub connections_dispatched: u64,
    /// Connections accepted but not yet dispatched, at snapshot time.
    pub queue_depth: u64,
    /// Update batches published by the writer thread.
    pub writer_publishes: u64,
    /// Total wall-clock the writer spent swapping in new epochs,
    /// microseconds.
    pub writer_publish_us_total: u64,
    /// Bounded ring of recent slow requests, oldest first.
    pub slow_queries: Vec<SlowQuery>,
}

impl ServerStats {
    /// All-zero stats skeleton; callers fill the fields they own.
    pub fn empty() -> Self {
        Self {
            epoch: 0,
            uptime: Duration::ZERO,
            queries: Vec::new(),
            engines: Vec::new(),
            queue_wait_us_total: 0,
            connections_dispatched: 0,
            queue_depth: 0,
            writer_publishes: 0,
            writer_publish_us_total: 0,
            slow_queries: Vec::new(),
        }
    }

    /// Mean queue wait per dispatched connection, microseconds.
    pub fn mean_queue_wait_us(&self) -> f64 {
        if self.connections_dispatched == 0 {
            0.0
        } else {
            self.queue_wait_us_total as f64 / self.connections_dispatched as f64
        }
    }

    /// Render the stats as the human-readable table shared by
    /// `pcpm query stats` and the bench suite: per-kind counts, error
    /// rates and p50/p90/p99 bucket upper bounds, followed by
    /// queue/writer totals and the slow-query ring.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "epoch {}  uptime {:.1}s\n",
            self.epoch,
            self.uptime.as_secs_f64()
        ));
        out.push_str(
            "kind                   count  errors  err%    p50_us    p90_us    p99_us   mean_us\n",
        );
        for q in &self.queries {
            if q.count == 0 {
                continue;
            }
            let p = |quantile: f64| -> String {
                q.quantile_upper_us(quantile)
                    .map(|v| format!("<{v}"))
                    .unwrap_or_else(|| "-".into())
            };
            out.push_str(&format!(
                "{:<22} {:>5} {:>7} {:>5.1} {:>9} {:>9} {:>9} {:>9.1}\n",
                q.name(),
                q.count,
                q.errors,
                q.error_rate() * 100.0,
                p(0.50),
                p(0.90),
                p(0.99),
                q.mean_exec_us(),
            ));
        }
        out.push_str(&format!(
            "queue: {} dispatched, depth {}, mean wait {:.1}us\n",
            self.connections_dispatched,
            self.queue_depth,
            self.mean_queue_wait_us()
        ));
        out.push_str(&format!(
            "writer: {} publishes, {:.3}ms total publish time\n",
            self.writer_publishes,
            self.writer_publish_us_total as f64 / 1e3
        ));
        if !self.slow_queries.is_empty() {
            out.push_str(&format!(
                "slow queries (last {}):\n",
                self.slow_queries.len()
            ));
            for s in &self.slow_queries {
                out.push_str(&format!(
                    "  {:<22} {:>8}us  epoch {}\n",
                    s.name(),
                    s.exec_us,
                    s.epoch
                ));
            }
        }
        out
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&(self.uptime.as_micros() as u64).to_le_bytes());
        buf.push(self.queries.len() as u8);
        for q in &self.queries {
            buf.push(q.kind);
            buf.extend_from_slice(&q.count.to_le_bytes());
            buf.extend_from_slice(&q.errors.to_le_bytes());
            buf.extend_from_slice(&q.exec_us_total.to_le_bytes());
            for &b in &q.buckets {
                buf.extend_from_slice(&b.to_le_bytes());
            }
        }
        buf.extend_from_slice(&(self.engines.len() as u16).to_le_bytes());
        for e in &self.engines {
            buf.extend_from_slice(&(e.path.len() as u32).to_le_bytes());
            buf.extend_from_slice(e.path.as_bytes());
            buf.extend_from_slice(&(e.load.as_micros() as u64).to_le_bytes());
            buf.extend_from_slice(&e.nodes.to_le_bytes());
            buf.extend_from_slice(&e.edges.to_le_bytes());
            buf.push(u8::from(e.weighted));
            buf.extend_from_slice(&(e.bin_format.len() as u32).to_le_bytes());
            buf.extend_from_slice(e.bin_format.as_bytes());
            buf.extend_from_slice(&e.partition_bytes.to_le_bytes());
        }
        buf.extend_from_slice(&self.queue_wait_us_total.to_le_bytes());
        buf.extend_from_slice(&self.connections_dispatched.to_le_bytes());
        buf.extend_from_slice(&self.queue_depth.to_le_bytes());
        buf.extend_from_slice(&self.writer_publishes.to_le_bytes());
        buf.extend_from_slice(&self.writer_publish_us_total.to_le_bytes());
        buf.extend_from_slice(&(self.slow_queries.len() as u16).to_le_bytes());
        for s in &self.slow_queries {
            buf.push(s.kind);
            buf.extend_from_slice(&s.exec_us.to_le_bytes());
            buf.extend_from_slice(&s.epoch.to_le_bytes());
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self, ProtoError> {
        let epoch = cur.u64()?;
        let uptime = Duration::from_micros(cur.u64()?);
        let nq = cur.u8()? as usize;
        let mut queries = Vec::with_capacity(nq);
        for _ in 0..nq {
            let kind = cur.u8()?;
            let count = cur.u64()?;
            let errors = cur.u64()?;
            let exec_us_total = cur.u64()?;
            let mut buckets = [0u64; NUM_LATENCY_BUCKETS];
            for b in &mut buckets {
                *b = cur.u64()?;
            }
            queries.push(QueryStat {
                kind,
                count,
                errors,
                exec_us_total,
                buckets,
            });
        }
        let ne = cur.u16()? as usize;
        let mut engines = Vec::with_capacity(ne);
        for _ in 0..ne {
            let path = cur.string()?;
            let load = Duration::from_micros(cur.u64()?);
            let nodes = cur.u32()?;
            let edges = cur.u64()?;
            let weighted = cur.u8()? != 0;
            let bin_format = cur.string()?;
            let partition_bytes = cur.u64()?;
            engines.push(EngineInfo {
                path,
                load,
                nodes,
                edges,
                weighted,
                bin_format,
                partition_bytes,
            });
        }
        let queue_wait_us_total = cur.u64()?;
        let connections_dispatched = cur.u64()?;
        let queue_depth = cur.u64()?;
        let writer_publishes = cur.u64()?;
        let writer_publish_us_total = cur.u64()?;
        let ns = cur.u16()? as usize;
        let mut slow_queries = Vec::with_capacity(ns);
        for _ in 0..ns {
            let kind = cur.u8()?;
            let exec_us = cur.u64()?;
            let epoch = cur.u64()?;
            slow_queries.push(SlowQuery {
                kind,
                exec_us,
                epoch,
            });
        }
        Ok(Self {
            epoch,
            uptime,
            queries,
            engines,
            queue_wait_us_total,
            connections_dispatched,
            queue_depth,
            writer_publishes,
            writer_publish_us_total,
            slow_queries,
        })
    }
}

/// A structural decode failure (truncated or inconsistent payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

/// Little-endian payload reader.
struct Cursor<'a> {
    data: &'a [u8],
}

macro_rules! cursor_le {
    ($name:ident, $t:ty) => {
        fn $name(&mut self) -> Result<$t, ProtoError> {
            let n = std::mem::size_of::<$t>();
            let bytes = self.bytes(n)?;
            let arr = bytes
                .try_into()
                .map_err(|_| ProtoError("internal: cursor slice width".into()))?;
            Ok(<$t>::from_le_bytes(arr))
        }
    };
}

impl<'a> Cursor<'a> {
    cursor_le!(u16, u16);
    cursor_le!(u32, u32);
    cursor_le!(u64, u64);
    cursor_le!(f64, f64);
    cursor_le!(f32, f32);

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.data.len() < n {
            return Err(ProtoError("truncated payload".into()));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn rest(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.data)
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ProtoError("invalid UTF-8".into()))
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, ProtoError> {
        let n = self.u32()? as usize;
        if n.checked_mul(4).is_none_or(|b| b > self.data.len()) {
            return Err(ProtoError("vector length exceeds payload".into()));
        }
        (0..n).map(|_| self.u32()).collect()
    }

    fn f32_vec(&mut self) -> Result<Vec<f32>, ProtoError> {
        let n = self.u32()? as usize;
        if n.checked_mul(4).is_none_or(|b| b > self.data.len()) {
            return Err(ProtoError("vector length exceeds payload".into()));
        }
        (0..n).map(|_| self.f32()).collect()
    }

    fn expect_empty(&self) -> Result<(), ProtoError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(ProtoError(format!(
                "{} trailing bytes after payload",
                self.data.len()
            )))
        }
    }
}

/// Writes one frame (`length ‖ version ‖ kind ‖ payload`).
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> io::Result<()> {
    let body_len = 3 + payload.len();
    if body_len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut head = [0u8; 7];
    head[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    head[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    head[6] = kind;
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// A frame as read off the wire, before semantic decoding.
pub struct RawFrame {
    /// Protocol version from the header.
    pub version: u16,
    /// Kind byte.
    pub kind: u8,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Reads one frame; `Ok(None)` means the peer closed the connection
/// cleanly before a new frame started.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<RawFrame>> {
    let mut len_buf = [0u8; 4];
    // EOF before any byte of a frame is a clean close.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let body_len = u32::from_le_bytes(len_buf) as usize;
    if !(3..=MAX_FRAME_BYTES).contains(&body_len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {body_len}"),
        ));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    let version = u16::from_le_bytes([body[0], body[1]]);
    let kind = body[2];
    body.drain(..3);
    Ok(Some(RawFrame {
        version,
        kind,
        payload: body,
    }))
}

/// Sends a request frame.
pub fn send_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    write_frame(w, req.kind(), &req.encode_payload())
}

/// Sends a response frame.
pub fn send_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    write_frame(w, resp.kind(), &resp.encode_payload())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let decoded = Request::decode(req.kind(), &req.encode_payload()).unwrap();
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: Response) {
        let decoded = Response::decode(resp.kind(), &resp.encode_payload()).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Health);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::Pagerank {
            engine: 3,
            params: QueryParams {
                iterations: 50,
                damping: 0.9,
                tolerance: Some(1e-9),
                redistribute_dangling: true,
            },
        });
        round_trip_request(Request::Ppr {
            engine: 0,
            params: QueryParams::default(),
            seeds: vec![1, 5, 9],
        });
        round_trip_request(Request::Bfs {
            engine: 1,
            source: 7,
        });
        round_trip_request(Request::Sssp {
            engine: 0,
            source: 0,
        });
        round_trip_request(Request::Update {
            engine: 2,
            batch: UpdateBatch::from_parts(vec![(1, 2)], vec![(3, 4)]),
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Health {
            epoch: 9,
            engines: 2,
        });
        round_trip_response(Response::Ranks {
            epoch: 1,
            iterations: 20,
            converged: true,
            scores: vec![0.25, 0.5, 0.125],
        });
        round_trip_response(Response::Levels {
            epoch: 0,
            levels: vec![0, 1, u32::MAX],
        });
        round_trip_response(Response::Distances {
            epoch: 0,
            distances: vec![0.0, 2.5, f32::INFINITY],
        });
        round_trip_response(Response::Updated(UpdateReply {
            epoch: 4,
            outcome: UpdateOutcome::Repaired(RepairStats {
                partitions_rebuilt: 2,
                partitions_total: 64,
            }),
            applied: 10,
            ignored: 1,
        }));
        round_trip_response(Response::Updated(UpdateReply {
            epoch: 5,
            outcome: UpdateOutcome::Rebuilt,
            applied: 3,
            ignored: 0,
        }));
        round_trip_response(Response::ShutdownAck { epoch: 2 });
        round_trip_response(Response::Error {
            code: ErrorCode::BadQuery,
            message: "seed 99 out of range".into(),
        });
        let mut buckets = [0u64; NUM_LATENCY_BUCKETS];
        buckets[4] = 17;
        round_trip_response(Response::Stats(Box::new(ServerStats {
            epoch: 3,
            uptime: Duration::from_micros(12345),
            queries: vec![QueryStat {
                kind: 2,
                count: 17,
                errors: 1,
                exec_us_total: 4242,
                buckets,
            }],
            engines: vec![EngineInfo {
                path: "a.pcpmc".into(),
                load: Duration::from_micros(900),
                nodes: 4096,
                edges: 65536,
                weighted: false,
                bin_format: "wide".into(),
                partition_bytes: 2048,
            }],
            queue_wait_us_total: 777,
            connections_dispatched: 19,
            queue_depth: 2,
            writer_publishes: 3,
            writer_publish_us_total: 9000,
            slow_queries: vec![SlowQuery {
                kind: 2,
                exec_us: 1500,
                epoch: 2,
            }],
        })));
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let req = Request::Ppr {
            engine: 0,
            params: QueryParams::default(),
            seeds: vec![3],
        };
        let mut buf = Vec::new();
        send_request(&mut buf, &req).unwrap();
        let frame = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(frame.version, PROTOCOL_VERSION);
        assert_eq!(Request::decode(frame.kind, &frame.payload).unwrap(), req);
        // Clean EOF -> None.
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
    }

    #[test]
    fn oversized_and_truncated_frames_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
        // A frame that promises more body than it carries.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[1, 0, 0]);
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn quantiles_from_buckets() {
        let mut buckets = [0u64; NUM_LATENCY_BUCKETS];
        buckets[3] = 90; // < 8 us
        buckets[10] = 10; // < 1024 us
        let q = QueryStat {
            kind: 2,
            count: 100,
            errors: 5,
            exec_us_total: 1000,
            buckets,
        };
        assert_eq!(q.quantile_upper_us(0.5), Some(8));
        assert_eq!(q.quantile_upper_us(0.99), Some(1024));
        assert!((q.error_rate() - 0.05).abs() < 1e-12);
        assert!((q.mean_exec_us() - 10.0).abs() < 1e-12);
        let empty = QueryStat {
            kind: 0,
            count: 0,
            errors: 0,
            exec_us_total: 0,
            buckets: [0; NUM_LATENCY_BUCKETS],
        };
        assert_eq!(empty.quantile_upper_us(0.5), None);
        assert_eq!(empty.error_rate(), 0.0);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Request::Bfs {
            engine: 0,
            source: 1,
        }
        .encode_payload();
        payload.push(0);
        assert!(Request::decode(4, &payload).is_err());
    }
}
