//! The serving dataplane: a TCP accept loop feeding a worker-thread
//! pool, a single writer thread applying incremental repairs, and
//! RCU-style epoch publication.
//!
//! # Concurrency model
//!
//! The shape follows the IX dataplane split: the read path is
//! run-to-completion and lock-avoiding, the control path (updates,
//! shutdown) is serialized on one writer.
//!
//! - The **serving state** (`epoch` + one [`Snapshot`] per engine) lives
//!   behind a `Mutex<Arc<ServingState>>` — the hand-rolled `ArcSwap`.
//!   Readers hold the lock only long enough to clone the `Arc`
//!   (nanoseconds); all query work happens against the clone, so an
//!   in-flight reader is never blocked by a publication and never sees
//!   a half-applied batch.
//! - Each **worker** owns a per-epoch cache of rehydrated engines (one
//!   per algebra it has been asked for). When it observes a new epoch it
//!   drops the cache and rebuilds lazily from the published snapshot —
//!   an O(E) copy per worker per epoch, amortized across every query the
//!   worker serves at that epoch.
//! - The single **writer thread** owns a private [`DeltaGraph`] overlay
//!   and a private engine per served graph. An update request flows
//!   `DeltaGraph::apply` → [`Engine::update`] (incremental bin repair) →
//!   `Engine::snapshot()` → publish `Arc::new(ServingState { epoch:
//!   e+1, .. })`. Readers at epoch `e` finish unperturbed; the next
//!   query on each worker picks up `e+1`.
//!
//! Because snapshot rehydration is bit-exact (PR 5 invariant) and the
//! query drivers are the offline ones, a served answer at epoch `e` is
//! bit-identical to the offline CLI run against the same snapshot after
//! the same `e` batches.

use crate::metrics::Metrics;
use crate::proto::{
    read_frame, send_response, EngineInfo, ErrorCode, QueryParams, RawFrame, Request, Response,
    ServerStats, UpdateReply, PROTOCOL_VERSION,
};
use pcpm_algos::{
    bfs_levels_with_engine, personalized_pagerank_many_with_unified_engine, sssp_with_engine,
    weighted_pagerank_with_unified_engine,
};
use pcpm_core::algebra::{Algebra, MinLevel, MinPlusF32, PlusF32};
use pcpm_core::pagerank::pagerank_with_unified_engine;
use pcpm_core::{Engine, PcpmConfig, PcpmError, Snapshot, SnapshotEngineBuilder, UpdateBatch};
use pcpm_graph::EdgeWeights;
use pcpm_stream::{DeltaGraph, StreamError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// How long blocked reads and accept polls sleep between checks of the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// One engine to serve: a decoded snapshot plus provenance.
pub struct EngineSpec {
    /// Display label (usually the snapshot path).
    pub label: String,
    /// The decoded snapshot.
    pub snapshot: Snapshot,
    /// Wall-clock spent loading/decoding it.
    pub load: Duration,
}

impl EngineSpec {
    /// Loads a `.pcpmc` snapshot file, timing the load.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, PcpmError> {
        let t0 = Instant::now();
        let snapshot = Snapshot::load(&path)?;
        Ok(Self {
            label: path.as_ref().display().to_string(),
            snapshot,
            load: t0.elapsed(),
        })
    }

    /// Wraps an already-decoded snapshot under `label`.
    pub fn from_snapshot(label: impl Into<String>, snapshot: Snapshot) -> Self {
        Self {
            label: label.into(),
            snapshot,
            load: Duration::ZERO,
        }
    }
}

/// One served engine's published state.
#[derive(Clone)]
struct Shard {
    snapshot: Snapshot,
    label: String,
    load: Duration,
}

/// The RCU-published value: everything a reader needs, immutable.
struct ServingState {
    epoch: u64,
    shards: Vec<Shard>,
}

/// Server tunables.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads answering queries (each handles one connection at
    /// a time, run-to-completion).
    pub workers: usize,
    /// Engine-owned thread-pool size for query execution (`None` =
    /// ambient pool).
    pub threads: Option<usize>,
    /// When set, a second plain-TCP listener is bound here answering
    /// any HTTP GET with Prometheus text exposition.
    pub metrics_addr: Option<SocketAddr>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            threads: None,
            metrics_addr: None,
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    metrics_listener: Option<TcpListener>,
    metrics_addr: Option<SocketAddr>,
    state: Arc<Mutex<Arc<ServingState>>>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

/// A running server spawned in background threads.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    join: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (use this to connect when binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics-exposition address, when `--metrics-addr` was
    /// configured (use this to scrape when binding port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Requests a graceful shutdown (drain in-flight, refuse new).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server to finish draining.
    pub fn join(self) -> io::Result<()> {
        match self.join.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Locks `m`, recovering the data if a previous holder panicked.
///
/// Every mutex in this file guards swap-published values (the serving
/// state `Arc`, pending-request queues): holders only read or replace
/// whole values, never leave them half-written, so mutex poisoning
/// carries no information a worker could act on — and the serve-panic
/// contract says a worker must not die over it.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Server {
    /// Binds `addr` and installs `engines` at epoch 0. The server does
    /// not accept connections until [`Server::run`] (or
    /// [`Server::spawn`]) is called.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        engines: Vec<EngineSpec>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        if engines.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs at least one engine snapshot",
            ));
        }
        if config.workers == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs at least one worker",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (metrics_listener, metrics_addr) = match config.metrics_addr {
            Some(maddr) => {
                let l = TcpListener::bind(maddr)?;
                let bound = l.local_addr()?;
                (Some(l), Some(bound))
            }
            None => (None, None),
        };
        let shards = engines
            .into_iter()
            .map(|e| Shard {
                snapshot: e.snapshot,
                label: e.label,
                load: e.load,
            })
            .collect();
        Ok(Server {
            listener,
            addr,
            metrics_listener,
            metrics_addr,
            state: Arc::new(Mutex::new(Arc::new(ServingState { epoch: 0, shards }))),
            metrics: Arc::new(Metrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics-exposition address, when configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The shutdown flag; storing `true` drains and stops the server.
    /// Share it with [`install_termination_handler`] for SIGTERM.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the server on the calling thread until the shutdown flag is
    /// set (by a `shutdown` request, [`ServerHandle::shutdown`], or a
    /// signal handler), then drains: in-flight requests finish, new
    /// ones are refused with [`ErrorCode::ShuttingDown`].
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            addr: _,
            metrics_listener,
            metrics_addr: _,
            state,
            metrics,
            shutdown,
            config,
        } = self;
        listener.set_nonblocking(true)?;

        // Writer: the sole mutator of serving state.
        let (update_tx, update_rx) = mpsc::channel::<WriteJob>();
        let writer_state = Arc::clone(&state);
        let writer_metrics = Arc::clone(&metrics);
        let writer = thread::Builder::new()
            .name("pcpm-serve-writer".into())
            .spawn(move || writer_loop(writer_state, update_rx, writer_metrics))?;

        // Metrics exposition: a second listener answering any HTTP GET
        // with Prometheus text; lives on its own thread, polls the
        // shutdown flag.
        let metrics_thread = match metrics_listener {
            Some(ml) => {
                let m = Arc::clone(&metrics);
                let s = Arc::clone(&state);
                let sd = Arc::clone(&shutdown);
                Some(
                    thread::Builder::new()
                        .name("pcpm-serve-metrics".into())
                        .spawn(move || metrics_http_loop(ml, s, m, sd))?,
                )
            }
            None => None,
        };

        // Workers: each pulls whole connections off a shared queue,
        // stamped with their accept time for queue-wait accounting.
        let (conn_tx, conn_rx) = mpsc::channel::<(TcpStream, Instant)>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let ppr_batcher = Arc::new(PprBatcher::default());
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let ctx = WorkerCtx {
                conn_rx: Arc::clone(&conn_rx),
                state: Arc::clone(&state),
                metrics: Arc::clone(&metrics),
                shutdown: Arc::clone(&shutdown),
                update_tx: update_tx.clone(),
                ppr_batcher: Arc::clone(&ppr_batcher),
                threads: config.threads,
            };
            workers.push(
                thread::Builder::new()
                    .name(format!("pcpm-serve-worker-{w}"))
                    .spawn(move || worker_loop(ctx))?,
            );
        }
        drop(update_tx);

        // Accept loop: refuse new connections once draining.
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    metrics.connection_queued();
                    if conn_tx.send((stream, Instant::now())).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        shutdown.store(true, Ordering::SeqCst);
        drop(conn_tx);
        for w in workers {
            let _ = w.join();
        }
        let _ = writer.join();
        if let Some(mt) = metrics_thread {
            let _ = mt.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle for
    /// the bound address and graceful shutdown. Fails only when the OS
    /// refuses the accept thread.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.addr;
        let metrics_addr = self.metrics_addr;
        let shutdown = self.shutdown_flag();
        let join = thread::Builder::new()
            .name("pcpm-serve-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            metrics_addr,
            shutdown,
            join,
        })
    }
}

/// The flag signal handlers flip (process-wide; `signal(2)` handlers
/// cannot carry state).
static TERM_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

/// Routes SIGTERM/SIGINT to `flag` so `pcpm serve` drains instead of
/// dying mid-request. Returns `false` when a handler was already
/// installed (or on non-Unix targets, where the portable protocol-level
/// `shutdown` request is the only trigger). The `std` runtime already
/// links `libc`, so the two calls below are declared directly instead
/// of pulling in the `libc` crate.
#[cfg(unix)]
#[allow(unsafe_code)]
pub fn install_termination_handler(flag: Arc<AtomicBool>) -> bool {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_term(_sig: i32) {
        // Only the atomic store: it is async-signal-safe.
        if let Some(f) = TERM_FLAG.get() {
            f.store(true, Ordering::SeqCst);
        }
    }
    if TERM_FLAG.set(flag).is_err() {
        return false;
    }
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        signal(SIGINT, on_term as extern "C" fn(i32) as usize);
    }
    true
}

/// Non-Unix stub: no signal routing; use the `shutdown` request.
#[cfg(not(unix))]
pub fn install_termination_handler(_flag: Arc<AtomicBool>) -> bool {
    false
}

// ---------------------------------------------------------------------
// Writer thread
// ---------------------------------------------------------------------

struct WriteJob {
    engine: usize,
    batch: UpdateBatch,
    reply: mpsc::Sender<Response>,
}

/// The writer's private, repairable copy of one shard.
struct WriterShard {
    delta: DeltaGraph,
    engine: Engine<PlusF32>,
}

fn writer_loop(
    state: Arc<Mutex<Arc<ServingState>>>,
    rx: mpsc::Receiver<WriteJob>,
    metrics: Arc<Metrics>,
) {
    let n = lock_recover(&state).shards.len();
    let mut shards: Vec<Option<WriterShard>> = (0..n).map(|_| None).collect();
    while let Ok(job) = rx.recv() {
        let resp = apply_update(&state, &mut shards, job.engine, job.batch, &metrics);
        let _ = job.reply.send(resp);
    }
}

fn apply_update(
    state: &Mutex<Arc<ServingState>>,
    shards: &mut [Option<WriterShard>],
    idx: usize,
    batch: UpdateBatch,
    metrics: &Metrics,
) -> Response {
    let cur = Arc::clone(&lock_recover(state));
    let Some(shard) = cur.shards.get(idx) else {
        return err_resp(
            ErrorCode::UnknownEngine,
            format!("engine {idx} (server holds {})", cur.shards.len()),
        );
    };
    if shard.snapshot.is_weighted() {
        return err_resp(
            ErrorCode::Unsupported,
            "updates target unweighted engines (the streaming layer models structural change only)",
        );
    }
    // Lazily build the writer's private overlay + engine the first time
    // this shard is written. The writer is the sole mutator, so its
    // private state stays in lockstep with what it has published.
    // (`take`/`insert` instead of `is_none` + `as_mut().expect(..)`
    // keeps the slot-filled proof in the types.)
    let existing = match shards[idx].take() {
        Some(ws) => ws,
        None => {
            let q = PcpmConfig::default()
                .with_partition_bytes(shard.snapshot.partition_bytes())
                .partition_nodes();
            let delta = match DeltaGraph::new(Arc::clone(shard.snapshot.graph()), q) {
                Ok(d) => d,
                Err(e) => return stream_err(e),
            };
            let engine = match SnapshotEngineBuilder::<PlusF32>::from_snapshot(
                shard.snapshot.clone(),
                shard.load,
            )
            .build()
            {
                Ok(e) => e,
                Err(e) => return engine_err(e),
            };
            WriterShard { delta, engine }
        }
    };
    let ws = shards[idx].insert(existing);
    let stats = match ws.delta.apply(&batch) {
        Ok(s) => s,
        Err(e) => return stream_err(e),
    };
    let snap_csr = ws.delta.snapshot();
    let outcome = match ws.engine.update(&snap_csr, None, &stats.applied) {
        Ok(o) => o,
        Err(e) => return engine_err(e),
    };
    let new_snapshot = match ws.engine.snapshot() {
        Ok(s) => s,
        Err(e) => return engine_err(e),
    };
    // Publish: clone-on-write of the shard vector, epoch + 1. Readers
    // holding the previous Arc keep serving the old epoch untouched.
    let publish_t0 = Instant::now();
    let mut guard = lock_recover(state);
    let prev = Arc::clone(&guard);
    let mut next_shards = prev.shards.clone();
    next_shards[idx].snapshot = new_snapshot;
    let epoch = prev.epoch + 1;
    *guard = Arc::new(ServingState {
        epoch,
        shards: next_shards,
    });
    drop(guard);
    metrics.writer_published(publish_t0.elapsed());
    Response::Updated(UpdateReply {
        epoch,
        outcome,
        applied: stats.applied.len() as u32,
        ignored: stats.ignored as u32,
    })
}

// ---------------------------------------------------------------------
// Metrics exposition (Prometheus text over plain HTTP)
// ---------------------------------------------------------------------

/// Serves Prometheus text exposition on `listener` until `shutdown` is
/// set. Any request line is answered with the full metric dump —
/// deliberately the simplest thing that `curl` and a Prometheus scraper
/// both accept: read until the blank line ending the request headers,
/// write one `HTTP/1.1 200` response, close.
fn metrics_http_loop(
    listener: TcpListener,
    state: Arc<Mutex<Arc<ServingState>>>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let epoch = lock_recover(&state).epoch;
                let _ = serve_metrics_request(stream, &metrics, epoch);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn serve_metrics_request(mut stream: TcpStream, metrics: &Metrics, epoch: u64) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    // Drain the request headers (bounded; we answer anything).
    let mut buf = [0u8; 1024];
    let mut seen = Vec::with_capacity(1024);
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        seen.extend_from_slice(&buf[..n]);
        if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 8192 {
            break;
        }
    }
    let body = metrics.render_prometheus(epoch);
    let resp = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Worker threads
// ---------------------------------------------------------------------

struct WorkerCtx {
    conn_rx: Arc<Mutex<mpsc::Receiver<(TcpStream, Instant)>>>,
    state: Arc<Mutex<Arc<ServingState>>>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    update_tx: mpsc::Sender<WriteJob>,
    ppr_batcher: Arc<PprBatcher>,
    threads: Option<usize>,
}

/// One queued PPR request awaiting a batched pass.
struct PendingPpr {
    engine: u16,
    params: QueryParams,
    seeds: Vec<u32>,
    reply: mpsc::Sender<Response>,
}

/// The shared PPR coalescing queue.
///
/// Every worker that picks a PPR request off its connection *publishes*
/// it here, then *claims* every queued request with the same
/// `(engine, params)` key — its own included. Whoever claims a
/// non-empty batch leads: it runs one batched
/// [`personalized_pagerank_many_with_unified_engine`] pass over all
/// claimed seed sets against its cached engine at its current epoch
/// and answers each request individually; workers whose request was
/// claimed by another leader just block on their reply channel.
///
/// Coalescing is opportunistic — it only pays off when several workers
/// hold same-parameter PPR requests at once — and invisible to
/// clients: the batched driver is bit-identical to the sequential one,
/// so each response is exactly what a solo pass would have produced at
/// the serving epoch the leader computed at.
#[derive(Default)]
struct PprBatcher {
    queue: Mutex<Vec<PendingPpr>>,
}

impl PprBatcher {
    /// Publishes `pending` for any same-key leader to claim.
    fn publish(&self, pending: PendingPpr) {
        lock_recover(&self.queue).push(pending);
    }

    /// Claims every queued request matching `(engine, params)`.
    fn claim(&self, engine: u16, params: &QueryParams) -> Vec<PendingPpr> {
        let mut q = lock_recover(&self.queue);
        let mut claimed = Vec::new();
        let mut kept = Vec::with_capacity(q.len());
        for p in q.drain(..) {
            if p.engine == engine && p.params == *params {
                claimed.push(p);
            } else {
                kept.push(p);
            }
        }
        *q = kept;
        claimed
    }
}

/// One worker's per-epoch engine cache for one shard: engines are
/// rehydrated lazily per algebra and dropped wholesale when the epoch
/// moves.
#[derive(Default)]
struct AlgCache {
    pr: Option<Engine<PlusF32>>,
    lvl: Option<Engine<MinLevel>>,
    dist: Option<Engine<MinPlusF32>>,
}

struct Worker {
    ctx: WorkerCtx,
    cache_epoch: u64,
    caches: Vec<AlgCache>,
}

fn worker_loop(ctx: WorkerCtx) {
    let mut worker = Worker {
        cache_epoch: 0,
        caches: Vec::new(),
        ctx,
    };
    loop {
        // Holding the queue lock only around the timed recv keeps
        // sibling workers runnable.
        let next = {
            let rx = lock_recover(&worker.ctx.conn_rx);
            rx.recv_timeout(POLL_INTERVAL)
        };
        match next {
            Ok((stream, queued_at)) => {
                worker
                    .ctx
                    .metrics
                    .connection_dispatched(queued_at.elapsed());
                worker.handle_connection(stream);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if worker.ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

impl Worker {
    fn handle_connection(&mut self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        loop {
            let frame = match read_frame_idle(&mut stream, &self.ctx.shutdown) {
                Ok(Some(f)) => f,
                Ok(None) => return,
                Err(e) => {
                    // A decodable header with an out-of-range length is a
                    // peer bug, not a transport failure: tell the peer
                    // (`BadFrame`) before closing instead of silently
                    // dropping the connection. The stream position is
                    // unrecoverable after a framing error, so we still
                    // close.
                    if e.kind() == io::ErrorKind::InvalidData {
                        let resp = err_resp(ErrorCode::BadFrame, e.to_string());
                        let _ = send_response(&mut stream, &resp);
                    }
                    return;
                }
            };
            let t0 = Instant::now();
            let resp = self.respond(&frame);
            let is_err = matches!(resp, Response::Error { .. });
            self.ctx
                .metrics
                .record(frame.kind, t0.elapsed(), is_err, self.cache_epoch);
            if send_response(&mut stream, &resp).is_err() {
                return;
            }
            if matches!(resp, Response::ShutdownAck { .. }) {
                return;
            }
        }
    }

    fn respond(&mut self, frame: &RawFrame) -> Response {
        if frame.version != PROTOCOL_VERSION {
            return err_resp(
                ErrorCode::UnsupportedVersion,
                format!(
                    "version {} (this server speaks {PROTOCOL_VERSION})",
                    frame.version
                ),
            );
        }
        let req = match Request::decode(frame.kind, &frame.payload) {
            Ok(r) => r,
            Err(e) => return err_resp(ErrorCode::BadFrame, e.to_string()),
        };
        if self.ctx.shutdown.load(Ordering::SeqCst) && !matches!(req, Request::Shutdown) {
            return err_resp(ErrorCode::ShuttingDown, "server is draining");
        }
        self.dispatch(req)
    }

    /// The published state, cloned out from under the lock; worker
    /// caches are invalidated when the epoch moved.
    fn current(&mut self) -> Arc<ServingState> {
        let cur = Arc::clone(&lock_recover(&self.ctx.state));
        if self.caches.len() != cur.shards.len() {
            self.caches = (0..cur.shards.len()).map(|_| AlgCache::default()).collect();
            self.cache_epoch = cur.epoch;
        } else if cur.epoch != self.cache_epoch {
            for c in &mut self.caches {
                *c = AlgCache::default();
            }
            self.cache_epoch = cur.epoch;
        }
        cur
    }

    fn dispatch(&mut self, req: Request) -> Response {
        match req {
            Request::Health => {
                let cur = self.current();
                Response::Health {
                    epoch: cur.epoch,
                    engines: cur.shards.len() as u16,
                }
            }
            Request::Stats => {
                let cur = self.current();
                let mut stats = ServerStats::empty();
                stats.epoch = cur.epoch;
                stats.queries = self.ctx.metrics.snapshot();
                stats.engines = cur
                    .shards
                    .iter()
                    .map(|s| EngineInfo {
                        path: s.label.clone(),
                        load: s.load,
                        nodes: s.snapshot.graph().num_nodes(),
                        edges: s.snapshot.graph().num_edges(),
                        weighted: s.snapshot.is_weighted(),
                        bin_format: s.snapshot.bin_format().to_string(),
                        partition_bytes: s.snapshot.partition_bytes() as u64,
                    })
                    .collect();
                self.ctx.metrics.fill_stats(&mut stats);
                Response::Stats(Box::new(stats))
            }
            Request::Shutdown => {
                let cur = self.current();
                self.ctx.shutdown.store(true, Ordering::SeqCst);
                Response::ShutdownAck { epoch: cur.epoch }
            }
            Request::Pagerank { engine, params } => self.pagerank(engine, params),
            Request::Ppr {
                engine,
                params,
                seeds,
            } => self.ppr(engine, params, seeds),
            Request::Bfs { engine, source } => self.bfs(engine, source),
            Request::Sssp { engine, source } => self.sssp(engine, source),
            Request::Update { engine, batch } => self.update(engine, batch),
        }
    }

    fn shard(cur: &ServingState, engine: u16) -> Result<&Shard, Response> {
        cur.shards.get(engine as usize).ok_or_else(|| {
            err_resp(
                ErrorCode::UnknownEngine,
                format!("engine {engine} (server holds {})", cur.shards.len()),
            )
        })
    }

    fn pagerank(&mut self, engine: u16, params: QueryParams) -> Response {
        let cur = self.current();
        let shard = match Self::shard(&cur, engine) {
            Ok(s) => s,
            Err(r) => return r,
        };
        let cfg = query_cfg(&shard.snapshot, &params);
        let graph = Arc::clone(shard.snapshot.graph());
        let weights = match shard.snapshot.weights() {
            Some(w) => match EdgeWeights::new(&graph, w.to_vec()) {
                Ok(ew) => Some(ew),
                Err(e) => {
                    return err_resp(
                        ErrorCode::Internal,
                        format!("snapshot weights inconsistent with its graph: {e}"),
                    )
                }
            },
            None => None,
        };
        let threads = self.ctx.threads;
        let eng = match cached_engine(
            &mut self.caches[engine as usize].pr,
            &shard.snapshot,
            threads,
        ) {
            Ok(e) => e,
            Err(r) => return r,
        };
        let result = match &weights {
            Some(w) => weighted_pagerank_with_unified_engine(&graph, w, &cfg, eng),
            None => pagerank_with_unified_engine(&graph, &cfg, eng, None),
        };
        match result {
            Ok(r) => Response::Ranks {
                epoch: cur.epoch,
                iterations: r.iterations as u32,
                converged: r.converged,
                scores: r.scores,
            },
            Err(e) => engine_err(e),
        }
    }

    /// PPR with opportunistic coalescing (see [`PprBatcher`]): publish,
    /// claim same-key requests, lead the batch if the claim was
    /// non-empty, then wait for this request's own reply — which the
    /// leader (possibly this worker, possibly a sibling) sends.
    fn ppr(&mut self, engine: u16, params: QueryParams, seeds: Vec<u32>) -> Response {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.ctx.ppr_batcher.publish(PendingPpr {
            engine,
            params,
            seeds,
            reply: reply_tx,
        });
        let claimed = self.ctx.ppr_batcher.claim(engine, &params);
        if !claimed.is_empty() {
            self.ppr_batch_lead(engine, &params, claimed);
        }
        match reply_rx.recv() {
            Ok(resp) => resp,
            Err(_) => err_resp(ErrorCode::Internal, "batch leader dropped the request"),
        }
    }

    /// Runs one batched PPR pass for every claimed request and answers
    /// each one. Requests with invalid seed sets get their individual
    /// `BadQuery` (exactly what a solo pass would have said); the valid
    /// remainder shares one [`personalized_pagerank_many_with_unified_engine`]
    /// call, so the destID bin stream is scanned once per iteration for
    /// the whole batch.
    fn ppr_batch_lead(&mut self, engine: u16, params: &QueryParams, batch: Vec<PendingPpr>) {
        let cur = self.current();
        let shard = match Self::shard(&cur, engine) {
            Ok(s) => s,
            Err(r) => {
                for p in batch {
                    let _ = p.reply.send(r.clone());
                }
                return;
            }
        };
        if shard.snapshot.is_weighted() {
            let r = err_resp(
                ErrorCode::Unsupported,
                "personalized pagerank serves unweighted engines only",
            );
            for p in batch {
                let _ = p.reply.send(r.clone());
            }
            return;
        }
        let cfg = query_cfg(&shard.snapshot, params);
        let graph = Arc::clone(shard.snapshot.graph());
        let threads = self.ctx.threads;
        let eng = match cached_engine(
            &mut self.caches[engine as usize].pr,
            &shard.snapshot,
            threads,
        ) {
            Ok(e) => e,
            Err(r) => {
                for p in batch {
                    let _ = p.reply.send(r.clone());
                }
                return;
            }
        };
        // Validate per request so one bad seed set cannot poison its
        // batchmates: the batched driver rejects the whole batch on any
        // invalid input, which would change single-request semantics.
        let n = graph.num_nodes();
        let mut valid = Vec::with_capacity(batch.len());
        for p in batch {
            if p.seeds.is_empty() {
                let _ = p.reply.send(engine_err(PcpmError::BadConfig(
                    "seed set must be non-empty",
                )));
            } else if let Some(&bad) = p.seeds.iter().find(|&&s| s >= n) {
                let _ = p.reply.send(engine_err(PcpmError::DimensionMismatch {
                    expected: n as usize,
                    got: bad as usize,
                }));
            } else {
                valid.push(p);
            }
        }
        if valid.is_empty() {
            return;
        }
        let seed_sets: Vec<Vec<u32>> = valid.iter().map(|p| p.seeds.clone()).collect();
        match personalized_pagerank_many_with_unified_engine(&graph, &seed_sets, &cfg, eng) {
            Ok(results) => {
                for (p, r) in valid.into_iter().zip(results) {
                    let _ = p.reply.send(Response::Ranks {
                        epoch: cur.epoch,
                        iterations: r.iterations as u32,
                        converged: r.converged,
                        scores: r.scores,
                    });
                }
            }
            Err(e) => {
                let r = engine_err(e);
                for p in valid {
                    let _ = p.reply.send(r.clone());
                }
            }
        }
    }

    fn bfs(&mut self, engine: u16, source: u32) -> Response {
        let cur = self.current();
        let shard = match Self::shard(&cur, engine) {
            Ok(s) => s,
            Err(r) => return r,
        };
        if shard.snapshot.is_weighted() {
            return err_resp(
                ErrorCode::Unsupported,
                "bfs serves unweighted engines only (weighted bins would bias the levels)",
            );
        }
        let graph = Arc::clone(shard.snapshot.graph());
        let threads = self.ctx.threads;
        let eng = match cached_engine(
            &mut self.caches[engine as usize].lvl,
            &shard.snapshot,
            threads,
        ) {
            Ok(e) => e,
            Err(r) => return r,
        };
        match bfs_levels_with_engine(&graph, source, eng) {
            Ok(levels) => Response::Levels {
                epoch: cur.epoch,
                levels,
            },
            Err(e) => engine_err(e),
        }
    }

    fn sssp(&mut self, engine: u16, source: u32) -> Response {
        let cur = self.current();
        let shard = match Self::shard(&cur, engine) {
            Ok(s) => s,
            Err(r) => return r,
        };
        if !shard.snapshot.is_weighted() {
            return err_resp(
                ErrorCode::Unsupported,
                "sssp needs a weighted snapshot (build-cache over a weighted .mtx)",
            );
        }
        let graph = Arc::clone(shard.snapshot.graph());
        let threads = self.ctx.threads;
        let eng = match cached_engine(
            &mut self.caches[engine as usize].dist,
            &shard.snapshot,
            threads,
        ) {
            Ok(e) => e,
            Err(r) => return r,
        };
        match sssp_with_engine(&graph, source, eng) {
            Ok(distances) => Response::Distances {
                epoch: cur.epoch,
                distances,
            },
            Err(e) => engine_err(e),
        }
    }

    fn update(&mut self, engine: u16, batch: UpdateBatch) -> Response {
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = WriteJob {
            engine: engine as usize,
            batch,
            reply: reply_tx,
        };
        if self.ctx.update_tx.send(job).is_err() {
            return err_resp(ErrorCode::ShuttingDown, "writer is gone");
        }
        match reply_rx.recv() {
            Ok(resp) => resp,
            Err(_) => err_resp(ErrorCode::ShuttingDown, "writer dropped the request"),
        }
    }
}

/// Builds (or reuses) the worker's cached engine for one algebra,
/// rehydrated from the published snapshot.
fn cached_engine<'a, A: Algebra>(
    slot: &'a mut Option<Engine<A>>,
    snapshot: &Snapshot,
    threads: Option<usize>,
) -> Result<&'a mut Engine<A>, Response> {
    // `take`/`insert` instead of `is_none` + `as_mut().expect(..)`: the
    // returned borrow is produced by the insertion itself, so there is
    // no "filled above" proof left for a panic to enforce.
    let engine = match slot.take() {
        Some(e) => e,
        None => {
            let mut b = SnapshotEngineBuilder::<A>::from_snapshot(snapshot.clone(), Duration::ZERO);
            if let Some(t) = threads {
                b = b.threads(t);
            }
            match b.build() {
                Ok(e) => e,
                Err(e) => return Err(engine_err(e)),
            }
        }
    };
    Ok(slot.insert(engine))
}

/// Query config: the snapshot pins the structural knobs (partition
/// size, bin format); the request supplies the solver knobs.
fn query_cfg(snapshot: &Snapshot, p: &QueryParams) -> PcpmConfig {
    let mut cfg = PcpmConfig::default()
        .with_partition_bytes(snapshot.partition_bytes())
        .with_iterations(p.iterations as usize);
    cfg.bin_format = snapshot.bin_format();
    cfg.damping = p.damping;
    cfg.tolerance = p.tolerance;
    cfg.redistribute_dangling = p.redistribute_dangling;
    cfg
}

fn err_resp(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

/// Maps engine failures to wire errors: caller mistakes become
/// `BadQuery`, everything else is `Internal`.
fn engine_err(e: PcpmError) -> Response {
    let code = match &e {
        PcpmError::DimensionMismatch { .. } | PcpmError::BadConfig(_) => ErrorCode::BadQuery,
        _ => ErrorCode::Internal,
    };
    err_resp(code, e.to_string())
}

/// Maps streaming-layer failures (update path) to wire errors.
fn stream_err(e: StreamError) -> Response {
    let code = match &e {
        StreamError::NodeOutOfRange { .. } | StreamError::BadConfig(_) => ErrorCode::BadQuery,
        StreamError::Engine(inner) => {
            return engine_err(inner.clone());
        }
        _ => ErrorCode::Internal,
    };
    err_resp(code, e.to_string())
}

/// Reads one frame, idling politely: a `WouldBlock` before the first
/// byte of a frame re-checks the shutdown flag; a stall *inside* a
/// frame keeps retrying briefly, then gives up on the connection.
fn read_frame_idle(stream: &mut TcpStream, shutdown: &AtomicBool) -> io::Result<Option<RawFrame>> {
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    // Idle connection during drain: close it.
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // The frame has started; finish it even while draining (this is the
    // in-flight work we promised to drain), bounded by a grace period.
    let grace = 100; // * POLL_INTERVAL = 5 s
    let mut reader = RetryReader {
        inner: stream,
        budget: grace,
    };
    let mut framed: Vec<u8> = first.to_vec();
    let mut rest = [0u8; 3];
    Read::read_exact(&mut reader, &mut rest)?;
    framed.extend_from_slice(&rest);
    let body_len = u32::from_le_bytes([framed[0], framed[1], framed[2], framed[3]]) as usize;
    if !(3..=crate::proto::MAX_FRAME_BYTES).contains(&body_len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {body_len}"),
        ));
    }
    let mut body = vec![0u8; body_len];
    Read::read_exact(&mut reader, &mut body)?;
    let mut full = framed;
    full.extend_from_slice(&body);
    // Delegate the header split to the shared decoder.
    read_frame(&mut &full[..])
}

/// A reader that absorbs a bounded number of read timeouts (each one
/// `POLL_INTERVAL` long) before giving up.
struct RetryReader<'a> {
    inner: &'a mut TcpStream,
    budget: u32,
}

impl Read for RetryReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.budget == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer stalled mid-frame",
                        ));
                    }
                    self.budget -= 1;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                other => return other,
            }
        }
    }
}
