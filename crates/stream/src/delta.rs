//! [`DeltaGraph`]: a mutable edge-set overlay on an immutable base CSR.
//!
//! The PCPM bins are a pre-processing artifact of a frozen [`Csr`]; a
//! `DeltaGraph` is what sits in front of them in a streaming deployment.
//! It keeps the base graph behind a shared [`Arc`] and absorbs
//! [`UpdateBatch`]es into *per-partition adjacency deltas*: sorted
//! per-node insert lists and delete tombstones, grouped by the source
//! partition whose bins they dirty. Readers take [`DeltaGraph::snapshot`]
//! — an `Arc<Csr>` materialized by copying untouched rows verbatim and
//! merging only the dirty ones — and hand it to
//! [`Engine::update`](pcpm_core::Engine::update) together with the
//! applied batch, so the engine repairs exactly the partitions the
//! overlay reports as touched.
//!
//! Once the pending delta volume crosses the **compaction threshold**
//! (a fraction of the base edge count), the overlay folds itself into a
//! fresh base CSR: lookups stay O(log deg) instead of degrading as
//! deltas pile up, and the memory of long-dead tombstones is reclaimed.

use crate::error::StreamError;
use pcpm_core::update::UpdateBatch;
use pcpm_graph::{Csr, NodeId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default [`DeltaGraph::compaction_threshold`]: compact when pending
/// deltas exceed a quarter of the base edge count.
pub const DEFAULT_COMPACTION_THRESHOLD: f64 = 0.25;

/// Pending adjacency changes of one source node.
#[derive(Clone, Debug, Default)]
struct NodeDelta {
    /// Sorted targets to add on top of the base row.
    add: Vec<NodeId>,
    /// Sorted tombstones: targets removed from the base row.
    del: Vec<NodeId>,
}

/// Pending deltas of one source partition, keyed by node.
#[derive(Clone, Debug, Default)]
struct PartitionDelta {
    nodes: BTreeMap<NodeId, NodeDelta>,
}

/// What one [`DeltaGraph::apply`] call actually changed.
#[derive(Clone, Debug)]
pub struct ApplyStats {
    /// The effective sub-batch that changed the edge set (inserts of
    /// present edges and deletes of absent edges are dropped). This is
    /// the batch to hand to `Engine::update` and `incremental_pagerank`.
    pub applied: UpdateBatch,
    /// Requested ops that were no-ops against the current edge set.
    pub ignored: usize,
    /// Source partitions whose adjacency actually changed (sorted).
    pub touched_partitions: Vec<u32>,
    /// Whether this apply crossed the threshold and compacted the
    /// overlay into a fresh base CSR.
    pub compacted: bool,
}

/// A streaming graph: immutable base CSR + pending per-partition deltas.
///
/// Semantics are those of a directed edge *set*: duplicate inserts and
/// deletes of absent edges are ignored (and reported). The base should
/// therefore be deduplicated (every generator in `pcpm_graph::gen`
/// already is); duplicate base edges are tolerated but a delete removes
/// all copies at the next materialization.
///
/// # Examples
///
/// ```
/// use pcpm_graph::Csr;
/// use pcpm_core::UpdateBatch;
/// use pcpm_stream::DeltaGraph;
/// use std::sync::Arc;
///
/// let base = Arc::new(Csr::from_edges(8, &[(0, 1), (1, 2), (6, 7)]).unwrap());
/// let mut dg = DeltaGraph::new(base, 4).unwrap();
/// let stats = dg
///     .apply(&UpdateBatch::from_parts(vec![(2, 3)], vec![(6, 7)]))
///     .unwrap();
/// assert_eq!(stats.touched_partitions, vec![0, 1]);
/// assert_eq!(dg.num_edges(), 3);
/// let snap = dg.snapshot();
/// assert_eq!(snap.neighbors(2), &[3]);
/// assert_eq!(snap.neighbors(6), &[] as &[u32]);
/// ```
#[derive(Clone, Debug)]
pub struct DeltaGraph {
    base: Arc<Csr>,
    partition_nodes: u32,
    parts: Vec<PartitionDelta>,
    /// Pending delta entries (adds + tombstones) across all partitions.
    pending: u64,
    /// Effective edge count (base − tombstoned copies + adds).
    num_edges: u64,
    compaction_threshold: f64,
    /// Cached materialization, invalidated by `apply`.
    snapshot: Option<Arc<Csr>>,
}

impl DeltaGraph {
    /// Wraps `base` with partitions of `partition_nodes` source nodes —
    /// use [`PcpmConfig::partition_nodes`](pcpm_core::PcpmConfig::partition_nodes)
    /// so touched-partition reporting matches the engine's bins.
    pub fn new(base: Arc<Csr>, partition_nodes: u32) -> Result<Self, StreamError> {
        if partition_nodes == 0 {
            return Err(StreamError::BadConfig("partition_nodes must be at least 1"));
        }
        let n = base.num_nodes();
        let k = if n == 0 {
            0
        } else {
            (n - 1) / partition_nodes + 1
        } as usize;
        let num_edges = base.num_edges();
        Ok(Self {
            base,
            partition_nodes,
            parts: vec![PartitionDelta::default(); k],
            pending: 0,
            num_edges,
            compaction_threshold: DEFAULT_COMPACTION_THRESHOLD,
            snapshot: None,
        })
    }

    /// Sets the compaction threshold: the overlay folds into a fresh
    /// base once pending deltas exceed `threshold × base-edge-count`.
    /// `0.0` compacts after every batch; `f64::INFINITY` never compacts.
    pub fn with_compaction_threshold(mut self, threshold: f64) -> Result<Self, StreamError> {
        if threshold.is_nan() || threshold < 0.0 {
            return Err(StreamError::BadConfig(
                "compaction threshold must be non-negative",
            ));
        }
        self.compaction_threshold = threshold;
        Ok(self)
    }

    /// Number of nodes (fixed for the overlay's lifetime).
    pub fn num_nodes(&self) -> u32 {
        self.base.num_nodes()
    }

    /// Effective number of directed edges (base minus tombstoned copies
    /// plus pending inserts).
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// The current base CSR (pre-delta).
    pub fn base(&self) -> &Arc<Csr> {
        &self.base
    }

    /// Source-partition size in nodes.
    pub fn partition_nodes(&self) -> u32 {
        self.partition_nodes
    }

    /// Number of source partitions.
    pub fn num_partitions(&self) -> u32 {
        self.parts.len() as u32
    }

    /// Pending delta entries (adds + tombstones).
    pub fn pending_ops(&self) -> u64 {
        self.pending
    }

    /// True when deltas are pending (snapshot ≠ base).
    pub fn is_dirty(&self) -> bool {
        self.pending > 0
    }

    /// The configured compaction threshold.
    pub fn compaction_threshold(&self) -> f64 {
        self.compaction_threshold
    }

    /// True when the directed edge `src -> dst` is currently present.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        if src >= self.num_nodes() || dst >= self.num_nodes() {
            return false;
        }
        if let Some(d) = self.delta_of(src) {
            if d.add.binary_search(&dst).is_ok() {
                return true;
            }
            if d.del.binary_search(&dst).is_ok() {
                return false;
            }
        }
        self.base.neighbors(src).binary_search(&dst).is_ok()
    }

    /// The merged adjacency of `src` (sorted; allocates only for dirty
    /// rows).
    pub fn neighbors(&self, src: NodeId) -> Vec<NodeId> {
        match self.delta_of(src) {
            None => self.base.neighbors(src).to_vec(),
            Some(d) => merge_row(self.base.neighbors(src), &d.add, &d.del),
        }
    }

    fn delta_of(&self, src: NodeId) -> Option<&NodeDelta> {
        self.parts
            .get((src / self.partition_nodes) as usize)?
            .nodes
            .get(&src)
    }

    /// Absorbs a canonical batch. Inserts of present edges and deletes
    /// of absent edges are ignored (set semantics); the returned
    /// [`ApplyStats::applied`] batch holds exactly the effective diff.
    /// Crossing the compaction threshold folds the overlay into a fresh
    /// base before returning.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<ApplyStats, StreamError> {
        let n = self.num_nodes();
        if let Some(max) = batch.max_node() {
            if max >= n {
                return Err(StreamError::NodeOutOfRange {
                    node: max,
                    num_nodes: n,
                });
            }
        }
        let mut applied_ins = Vec::new();
        let mut applied_del = Vec::new();
        let mut ignored = 0usize;
        for &(s, t) in batch.inserts() {
            if self.insert(s, t) {
                applied_ins.push((s, t));
            } else {
                ignored += 1;
            }
        }
        for &(s, t) in batch.deletes() {
            if self.delete(s, t) {
                applied_del.push((s, t));
            } else {
                ignored += 1;
            }
        }
        self.snapshot = None;
        let applied = UpdateBatch::from_parts(applied_ins, applied_del);
        let touched_partitions = applied.touched_src_partitions(self.partition_nodes);
        let limit = self.compaction_threshold * self.base.num_edges() as f64;
        let compacted = self.pending > 0 && self.pending as f64 > limit;
        if compacted {
            self.compact_now();
        }
        Ok(ApplyStats {
            applied,
            ignored,
            touched_partitions,
            compacted,
        })
    }

    /// Returns true when the edge was actually added.
    fn insert(&mut self, s: NodeId, t: NodeId) -> bool {
        let in_base = base_count(&self.base, s, t) > 0;
        let q = self.partition_nodes;
        let d = self.parts[(s / q) as usize].nodes.entry(s).or_default();
        if in_base {
            // Present unless tombstoned; inserting revives the tombstone.
            match d.del.binary_search(&t) {
                Ok(i) => {
                    d.del.remove(i);
                    self.pending -= 1;
                    self.num_edges += base_count(&self.base, s, t);
                    true
                }
                Err(_) => false,
            }
        } else {
            match d.add.binary_search(&t) {
                Ok(_) => false,
                Err(i) => {
                    d.add.insert(i, t);
                    self.pending += 1;
                    self.num_edges += 1;
                    true
                }
            }
        }
    }

    /// Returns true when the edge was actually removed.
    fn delete(&mut self, s: NodeId, t: NodeId) -> bool {
        let copies = base_count(&self.base, s, t);
        let q = self.partition_nodes;
        let d = self.parts[(s / q) as usize].nodes.entry(s).or_default();
        if let Ok(i) = d.add.binary_search(&t) {
            d.add.remove(i);
            self.pending -= 1;
            self.num_edges -= 1;
            return true;
        }
        if copies == 0 {
            return false;
        }
        match d.del.binary_search(&t) {
            Ok(_) => false, // already tombstoned
            Err(i) => {
                d.del.insert(i, t);
                self.pending += 1;
                self.num_edges -= copies;
                true
            }
        }
    }

    /// Materializes the current edge set as a shared CSR. Cached until
    /// the next [`DeltaGraph::apply`]; with no pending deltas this is
    /// the base handle itself (zero-copy).
    pub fn snapshot(&mut self) -> Arc<Csr> {
        if let Some(s) = &self.snapshot {
            return Arc::clone(s);
        }
        if self.pending == 0 {
            return Arc::clone(&self.base);
        }
        let snap = Arc::new(self.materialize());
        self.snapshot = Some(Arc::clone(&snap));
        snap
    }

    /// Folds pending deltas into a fresh base CSR and clears them.
    pub fn compact_now(&mut self) {
        if self.pending == 0 {
            return;
        }
        self.base = self.snapshot();
        for p in &mut self.parts {
            p.nodes.clear();
        }
        self.pending = 0;
        debug_assert_eq!(self.num_edges, self.base.num_edges());
        self.num_edges = self.base.num_edges();
    }

    /// Builds the merged CSR: clean rows are block-copied from the base
    /// arrays, dirty rows merged three-way.
    fn materialize(&self) -> Csr {
        let n = self.num_nodes() as usize;
        let base_off = self.base.offsets();
        let base_tgt = self.base.targets();
        let mut offsets = vec![0u64; n + 1];
        // Degree pass: start from the base degrees, adjust dirty rows.
        for v in 0..n {
            offsets[v + 1] = base_off[v + 1] - base_off[v];
        }
        for part in &self.parts {
            for (&v, d) in &part.nodes {
                let row = self.base.neighbors(v);
                let removed: u64 = d.del.iter().map(|t| count_in_sorted(row, *t) as u64).sum();
                offsets[v as usize + 1] += d.add.len() as u64;
                offsets[v as usize + 1] -= removed;
            }
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut targets = vec![0 as NodeId; *offsets.last().unwrap_or(&0) as usize];
        for (p, part) in self.parts.iter().enumerate() {
            let q = self.partition_nodes;
            let lo = p as u32 * q;
            let hi = ((p as u32 + 1) * q).min(self.num_nodes());
            let mut dirty = part.nodes.iter().peekable();
            let mut v = lo;
            while v < hi {
                let out_lo = offsets[v as usize] as usize;
                let out_hi = offsets[v as usize + 1] as usize;
                match dirty.peek() {
                    Some(&(&dv, d)) if dv == v => {
                        let merged = merge_row(self.base.neighbors(v), &d.add, &d.del);
                        targets[out_lo..out_hi].copy_from_slice(&merged);
                        dirty.next();
                    }
                    _ => {
                        let b_lo = base_off[v as usize] as usize;
                        let b_hi = base_off[v as usize + 1] as usize;
                        targets[out_lo..out_hi].copy_from_slice(&base_tgt[b_lo..b_hi]);
                    }
                }
                v += 1;
            }
        }
        Csr::from_parts(self.num_nodes(), offsets, targets)
            .expect("merged rows stay sorted and in range")
    }
}

/// Number of copies of `t` in the sorted row (1 for deduped bases).
fn count_in_sorted(row: &[NodeId], t: NodeId) -> usize {
    row.partition_point(|&x| x <= t) - row.partition_point(|&x| x < t)
}

/// Occurrences of `(s, t)` in the base graph.
fn base_count(base: &Csr, s: NodeId, t: NodeId) -> u64 {
    count_in_sorted(base.neighbors(s), t) as u64
}

/// `(base − del) ∪ add`, all inputs sorted, result sorted.
fn merge_row(base: &[NodeId], add: &[NodeId], del: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(base.len() + add.len());
    let mut ai = 0usize;
    for &t in base {
        if del.binary_search(&t).is_ok() {
            continue;
        }
        while ai < add.len() && add[ai] < t {
            out.push(add[ai]);
            ai += 1;
        }
        out.push(t);
    }
    out.extend_from_slice(&add[ai..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::{rmat, RmatConfig};

    fn small() -> Arc<Csr> {
        Arc::new(Csr::from_edges(8, &[(0, 1), (0, 3), (1, 2), (5, 6), (6, 7)]).unwrap())
    }

    #[test]
    fn set_semantics_and_stats() {
        let mut dg = DeltaGraph::new(small(), 4).unwrap();
        let stats = dg
            .apply(&UpdateBatch::from_parts(
                vec![(0, 1), (2, 4)], // (0,1) already present
                vec![(5, 6), (3, 0)], // (3,0) absent
            ))
            .unwrap();
        assert_eq!(stats.ignored, 2);
        assert_eq!(stats.applied.inserts(), &[(2, 4)]);
        assert_eq!(stats.applied.deletes(), &[(5, 6)]);
        assert_eq!(stats.touched_partitions, vec![0, 1]);
        assert_eq!(dg.num_edges(), 5);
        assert!(dg.has_edge(2, 4));
        assert!(!dg.has_edge(5, 6));
        assert_eq!(dg.neighbors(0), vec![1, 3]);
    }

    #[test]
    fn insert_revives_tombstone_and_delete_cancels_insert() {
        let mut dg = DeltaGraph::new(small(), 4).unwrap();
        dg.apply(&UpdateBatch::from_parts(vec![], vec![(0, 1)]))
            .unwrap();
        assert!(!dg.has_edge(0, 1));
        dg.apply(&UpdateBatch::from_parts(vec![(0, 1)], vec![]))
            .unwrap();
        assert!(dg.has_edge(0, 1));
        assert_eq!(dg.pending_ops(), 0, "revival cancels the tombstone");
        dg.apply(&UpdateBatch::from_parts(vec![(4, 5)], vec![]))
            .unwrap();
        dg.apply(&UpdateBatch::from_parts(vec![], vec![(4, 5)]))
            .unwrap();
        assert_eq!(dg.pending_ops(), 0, "delete cancels the pending insert");
        assert_eq!(dg.num_edges(), 5);
    }

    #[test]
    fn snapshot_matches_rebuilt_edge_set() {
        let base = Arc::new(rmat(&RmatConfig::graph500(7, 6, 5)).unwrap());
        let mut dg = DeltaGraph::new(Arc::clone(&base), 16)
            .unwrap()
            .with_compaction_threshold(f64::INFINITY)
            .unwrap();
        let batch = UpdateBatch::from_parts(
            vec![(0, 100), (1, 101), (120, 2)],
            base.neighbors(3)
                .first()
                .map(|&t| (3, t))
                .into_iter()
                .collect(),
        );
        let stats = dg.apply(&batch).unwrap();
        let mut edges: Vec<(u32, u32)> = base.edges().collect();
        edges.retain(|e| stats.applied.deletes().binary_search(e).is_err());
        edges.extend_from_slice(stats.applied.inserts());
        edges.sort_unstable();
        edges.dedup();
        let want = Csr::from_edges(base.num_nodes(), &edges).unwrap();
        assert_eq!(*dg.snapshot(), want);
        assert_eq!(dg.num_edges(), want.num_edges());
        // Cached snapshot is reused.
        assert!(Arc::ptr_eq(&dg.snapshot(), &dg.snapshot()));
    }

    #[test]
    fn clean_overlay_snapshot_is_the_base_handle() {
        let base = small();
        let mut dg = DeltaGraph::new(Arc::clone(&base), 4).unwrap();
        assert!(Arc::ptr_eq(&dg.snapshot(), &base));
        assert!(!dg.is_dirty());
    }

    #[test]
    fn threshold_triggers_compaction() {
        let base = small(); // 5 edges, threshold 0.25 -> compact above 1.25 pending
        let mut dg = DeltaGraph::new(Arc::clone(&base), 4).unwrap();
        let s1 = dg
            .apply(&UpdateBatch::from_parts(vec![(2, 3)], vec![]))
            .unwrap();
        assert!(!s1.compacted);
        let s2 = dg
            .apply(&UpdateBatch::from_parts(vec![(2, 5)], vec![]))
            .unwrap();
        assert!(s2.compacted);
        assert!(!dg.is_dirty());
        assert_eq!(dg.base().num_edges(), 7);
        assert!(!Arc::ptr_eq(dg.base(), &base));
        // Explicit compaction of a clean overlay is a no-op.
        let b = Arc::clone(dg.base());
        dg.compact_now();
        assert!(Arc::ptr_eq(dg.base(), &b));
    }

    #[test]
    fn zero_threshold_compacts_every_batch() {
        let mut dg = DeltaGraph::new(small(), 4)
            .unwrap()
            .with_compaction_threshold(0.0)
            .unwrap();
        let s = dg
            .apply(&UpdateBatch::from_parts(vec![(7, 0)], vec![]))
            .unwrap();
        assert!(s.compacted);
        assert!(!dg.is_dirty());
        assert!(dg.has_edge(7, 0));
    }

    #[test]
    fn rejects_out_of_range_and_bad_config() {
        let mut dg = DeltaGraph::new(small(), 4).unwrap();
        assert!(dg
            .apply(&UpdateBatch::from_parts(vec![(0, 99)], vec![]))
            .is_err());
        assert!(DeltaGraph::new(small(), 0).is_err());
        assert!(DeltaGraph::new(small(), 4)
            .unwrap()
            .with_compaction_threshold(-1.0)
            .is_err());
    }

    #[test]
    fn empty_base() {
        let mut dg = DeltaGraph::new(Arc::new(Csr::from_edges(0, &[]).unwrap()), 4).unwrap();
        assert_eq!(dg.num_partitions(), 0);
        let s = dg.apply(&UpdateBatch::default()).unwrap();
        assert!(s.applied.is_empty());
        assert_eq!(dg.snapshot().num_nodes(), 0);
    }
}
