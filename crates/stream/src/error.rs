//! Error type for the streaming layer.

use std::fmt;

/// Errors from the streaming front end.
#[derive(Debug)]
pub enum StreamError {
    /// A referenced node is outside the graph.
    NodeOutOfRange {
        /// The offending node ID.
        node: u32,
        /// The graph's node count.
        num_nodes: u32,
    },
    /// A configuration field is out of its valid range.
    BadConfig(&'static str),
    /// An update file failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An engine-side error surfaced during replay.
    Engine(pcpm_core::PcpmError),
    /// An I/O error while reading or writing an update file.
    Io(std::io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            StreamError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            StreamError::Parse { line, message } => {
                write!(f, "update file line {line}: {message}")
            }
            StreamError::Engine(e) => write!(f, "engine: {e}"),
            StreamError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<pcpm_core::PcpmError> for StreamError {
    fn from(e: pcpm_core::PcpmError) -> Self {
        StreamError::Engine(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_problem() {
        assert!(StreamError::NodeOutOfRange {
            node: 9,
            num_nodes: 4
        }
        .to_string()
        .contains("node 9"));
        assert!(StreamError::BadConfig("threshold")
            .to_string()
            .contains("threshold"));
        assert!(StreamError::Parse {
            line: 3,
            message: "bad op".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
