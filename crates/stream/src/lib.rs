//! Streaming graph subsystem for the PCPM reproduction.
//!
//! The paper's partition-centric bins are built once over a frozen CSR;
//! this crate makes the reproduction serve *continuously arriving*
//! traffic by turning every edge change into partition-local work:
//!
//! - [`UpdateLog`] — the batching front end: validates ops, dedups with
//!   last-op-wins semantics, seals canonical
//!   [`UpdateBatch`](pcpm_core::UpdateBatch)es and
//!   [`group_by_dst_partition`]s them for shard routing;
//! - [`DeltaGraph`] — an immutable base [`Csr`](pcpm_graph::Csr) under
//!   per-partition adjacency deltas and delete tombstones, with cached
//!   `Arc` snapshots and a compaction threshold that folds deltas back
//!   into a fresh base;
//! - [`replay`] — the end-to-end driver: apply a batch, repair the
//!   engine's bins via
//!   [`Engine::update`](pcpm_core::Engine::update) (only touched
//!   partitions are re-scattered), and refresh rankings with
//!   [`incremental_pagerank`](pcpm_algos::incremental_pagerank) —
//!   timing each repair against the full rebuild it replaced.
//!
//! # Example
//!
//! ```
//! use pcpm_graph::gen::{rmat, RmatConfig};
//! use pcpm_stream::{gen_updates, replay, ReplayConfig, UpdateGenConfig};
//! use std::sync::Arc;
//!
//! let base = Arc::new(rmat(&RmatConfig::graph500(8, 6, 1)).unwrap());
//! let batches = gen_updates(&base, &UpdateGenConfig { batches: 2, batch_size: 10, ..Default::default() }).unwrap();
//! let report = replay(base, &batches, &ReplayConfig::default()).unwrap();
//! assert_eq!(report.batches.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod error;
pub mod log;
pub mod replay;

pub use delta::{ApplyStats, DeltaGraph, DEFAULT_COMPACTION_THRESHOLD};
pub use error::StreamError;
pub use log::{group_by_dst_partition, UpdateLog};
pub use replay::{
    final_cache_path, gen_updates, read_updates, read_updates_auto, read_updates_binary, replay,
    write_updates, write_updates_binary, BatchReport, Locality, ReplayConfig, ReplayReport,
    UpdateGenConfig,
};
