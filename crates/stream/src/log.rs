//! [`UpdateLog`]: the batching front end of the streaming subsystem.
//!
//! Edge changes arrive one at a time (a crawler found a link, a user
//! unfollowed); the log validates each op against the graph's node
//! range, buffers them in arrival order, and [`UpdateLog::seal`]s them
//! into a canonical [`UpdateBatch`] — deduplicated with last-op-wins
//! semantics, ready for [`DeltaGraph::apply`](crate::DeltaGraph::apply).
//! [`group_by_dst_partition`] splits a sealed batch by destination
//! partition for shard-per-partition routing.

use crate::error::StreamError;
use pcpm_core::update::{EdgeOp, EdgeUpdate, UpdateBatch};
use pcpm_graph::NodeId;

/// Validating, order-preserving buffer of pending edge ops.
///
/// # Examples
///
/// ```
/// use pcpm_stream::UpdateLog;
///
/// let mut log = UpdateLog::new(16);
/// log.insert(0, 1).unwrap();
/// log.delete(0, 1).unwrap(); // cancels the insert
/// log.insert(2, 3).unwrap();
/// let batch = log.seal();
/// assert_eq!(batch.inserts(), &[(2, 3)]);
/// assert_eq!(batch.deletes(), &[(0, 1)]);
/// assert!(log.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct UpdateLog {
    num_nodes: u32,
    ops: Vec<EdgeUpdate>,
}

impl UpdateLog {
    /// A log validating ops against a graph of `num_nodes` nodes.
    pub fn new(num_nodes: u32) -> Self {
        Self {
            num_nodes,
            ops: Vec::new(),
        }
    }

    /// Buffers an insert of `src -> dst`.
    pub fn insert(&mut self, src: NodeId, dst: NodeId) -> Result<(), StreamError> {
        self.push(EdgeUpdate {
            op: EdgeOp::Insert,
            src,
            dst,
        })
    }

    /// Buffers a delete of `src -> dst`.
    pub fn delete(&mut self, src: NodeId, dst: NodeId) -> Result<(), StreamError> {
        self.push(EdgeUpdate {
            op: EdgeOp::Delete,
            src,
            dst,
        })
    }

    /// Buffers one op, validating its endpoints.
    pub fn push(&mut self, u: EdgeUpdate) -> Result<(), StreamError> {
        let max = u.src.max(u.dst);
        if max >= self.num_nodes {
            return Err(StreamError::NodeOutOfRange {
                node: max,
                num_nodes: self.num_nodes,
            });
        }
        self.ops.push(u);
        Ok(())
    }

    /// Buffered op count (before dedup).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drains the buffer into a canonical batch: per edge the last op
    /// wins, duplicates collapse, inserts/deletes come out sorted.
    pub fn seal(&mut self) -> UpdateBatch {
        let batch = UpdateBatch::from_ops(&self.ops);
        self.ops.clear();
        batch
    }
}

/// Splits a canonical batch into per-destination-partition sub-batches
/// (partitions of `q` nodes), sorted by partition index. Only non-empty
/// partitions are returned.
pub fn group_by_dst_partition(batch: &UpdateBatch, q: u32) -> Vec<(u32, UpdateBatch)> {
    let mut out: Vec<(u32, UpdateBatch)> = Vec::new();
    for p in batch.touched_dst_partitions(q) {
        let ins: Vec<(NodeId, NodeId)> = batch
            .inserts()
            .iter()
            .copied()
            .filter(|&(_, t)| t / q == p)
            .collect();
        let del: Vec<(NodeId, NodeId)> = batch
            .deletes()
            .iter()
            .copied()
            .filter(|&(_, t)| t / q == p)
            .collect();
        out.push((p, UpdateBatch::from_parts(ins, del)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_node_range() {
        let mut log = UpdateLog::new(4);
        assert!(log.insert(0, 3).is_ok());
        assert!(matches!(
            log.insert(0, 4),
            Err(StreamError::NodeOutOfRange { node: 4, .. })
        ));
        assert!(log.delete(9, 0).is_err());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn last_op_wins_across_the_buffer() {
        let mut log = UpdateLog::new(10);
        log.insert(1, 2).unwrap();
        log.delete(1, 2).unwrap();
        log.delete(3, 4).unwrap();
        log.insert(3, 4).unwrap();
        let b = log.seal();
        assert_eq!(b.inserts(), &[(3, 4)]);
        assert_eq!(b.deletes(), &[(1, 2)]);
        assert!(log.seal().is_empty());
    }

    #[test]
    fn groups_by_destination_partition() {
        let mut log = UpdateLog::new(16);
        log.insert(0, 1).unwrap();
        log.insert(2, 9).unwrap();
        log.delete(3, 8).unwrap();
        log.insert(1, 15).unwrap();
        let groups = group_by_dst_partition(&log.seal(), 4);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[0].1.inserts(), &[(0, 1)]);
        assert_eq!(groups[1].0, 2);
        assert_eq!(groups[1].1.inserts(), &[(2, 9)]);
        assert_eq!(groups[1].1.deletes(), &[(3, 8)]);
        assert_eq!(groups[2].0, 3);
        let total: usize = groups.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 4);
    }
}
