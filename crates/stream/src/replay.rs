//! Update-file I/O, a seeded update generator, and the replay harness
//! the `pcpm stream` subcommand and the throughput bench share.
//!
//! # Update file format
//!
//! Plain text, one op per line; batches are separated by a line holding
//! only `commit` (a trailing unterminated batch is also committed):
//!
//! ```text
//! # comment
//! + 3 17      insert edge 3 -> 17
//! - 5 2       delete edge 5 -> 2
//! commit
//! + 8 1
//! commit
//! ```

use crate::delta::DeltaGraph;
use crate::error::StreamError;
use crate::log::UpdateLog;
use pcpm_algos::incremental_pagerank;
use pcpm_core::algebra::PlusF32;
use pcpm_core::pagerank::pagerank_with_unified_engine;
use pcpm_core::update::{UpdateBatch, UpdateOutcome};
use pcpm_core::{BackendKind, Engine, PcpmConfig, PcpmError, SnapshotEngineBuilder, SnapshotError};
use pcpm_graph::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parses an update file into canonical batches (see the module docs
/// for the format). Ops are validated against `num_nodes`.
pub fn read_updates<R: Read>(reader: R, num_nodes: u32) -> Result<Vec<UpdateBatch>, StreamError> {
    let reader = BufReader::new(reader);
    let mut log = UpdateLog::new(num_nodes);
    let mut batches = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "commit" {
            batches.push(log.seal());
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let op = it.next().expect("non-empty line");
        let parse = |tok: Option<&str>| -> Result<u32, StreamError> {
            tok.ok_or_else(|| StreamError::Parse {
                line: idx + 1,
                message: "expected '<+|-> src dst'".into(),
            })?
            .parse::<u32>()
            .map_err(|e| StreamError::Parse {
                line: idx + 1,
                message: e.to_string(),
            })
        };
        let src = parse(it.next())?;
        let dst = parse(it.next())?;
        let push = match op {
            "+" => log.insert(src, dst),
            "-" => log.delete(src, dst),
            other => {
                return Err(StreamError::Parse {
                    line: idx + 1,
                    message: format!("unknown op '{other}' (expected '+' or '-')"),
                })
            }
        };
        push.map_err(|e| StreamError::Parse {
            line: idx + 1,
            message: e.to_string(),
        })?;
    }
    if !log.is_empty() {
        batches.push(log.seal());
    }
    Ok(batches)
}

/// Writes batches in the update-file format.
pub fn write_updates<W: Write>(mut w: W, batches: &[UpdateBatch]) -> Result<(), StreamError> {
    for b in batches {
        for &(s, t) in b.inserts() {
            writeln!(w, "+ {s} {t}")?;
        }
        for &(s, t) in b.deletes() {
            writeln!(w, "- {s} {t}")?;
        }
        writeln!(w, "commit")?;
    }
    Ok(())
}

/// Magic bytes identifying a binary update *stream* ("PCPMUS", v1): a
/// sequence of length-prefixed [`UpdateBatch::to_bytes`] blobs.
const STREAM_MAGIC: &[u8; 8] = b"PCPMUS01";

/// Writes batches in the binary update-stream format:
///
/// ```text
/// magic    8 B   "PCPMUS01"
/// batches  8 B   count (little-endian)
/// per batch:
///   len    8 B   byte length of the blob that follows
///   blob         UpdateBatch::to_bytes (self-checksummed)
/// ```
///
/// Compared to the text format this is ~5x smaller and avoids parsing;
/// each embedded batch carries its own FNV checksum, so corruption is
/// detected per batch on read.
pub fn write_updates_binary<W: Write>(
    mut w: W,
    batches: &[UpdateBatch],
) -> Result<(), StreamError> {
    w.write_all(STREAM_MAGIC)?;
    w.write_all(&(batches.len() as u64).to_le_bytes())?;
    for b in batches {
        let blob = b.to_bytes();
        w.write_all(&(blob.len() as u64).to_le_bytes())?;
        w.write_all(&blob)?;
    }
    Ok(())
}

/// Reads a binary update stream written by [`write_updates_binary`],
/// validating every node ID against `num_nodes`.
pub fn read_updates_binary<R: Read>(
    mut reader: R,
    num_nodes: u32,
) -> Result<Vec<UpdateBatch>, StreamError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    read_updates_binary_bytes(&data, num_nodes)
}

fn read_updates_binary_bytes(
    mut data: &[u8],
    num_nodes: u32,
) -> Result<Vec<UpdateBatch>, StreamError> {
    let corrupt = |message: &str| StreamError::Parse {
        line: 0,
        message: format!("binary update stream: {message}"),
    };
    if data.len() < STREAM_MAGIC.len() + 8 {
        return Err(corrupt("truncated header"));
    }
    if &data[..STREAM_MAGIC.len()] != STREAM_MAGIC {
        return Err(corrupt("bad magic"));
    }
    data = &data[STREAM_MAGIC.len()..];
    let count = u64::from_le_bytes(data[..8].try_into().expect("length checked"));
    data = &data[8..];
    let mut batches = Vec::with_capacity(count.min(1 << 20) as usize);
    for i in 0..count {
        if data.len() < 8 {
            return Err(corrupt("truncated batch length"));
        }
        let len = u64::from_le_bytes(data[..8].try_into().expect("length checked")) as usize;
        data = &data[8..];
        if data.len() < len {
            return Err(corrupt("truncated batch blob"));
        }
        let batch = UpdateBatch::from_bytes(&data[..len]).map_err(|e| StreamError::Parse {
            line: 0,
            message: format!("binary update stream, batch {i}: {e}"),
        })?;
        if let Some(max) = batch.max_node() {
            if max >= num_nodes {
                return Err(StreamError::NodeOutOfRange {
                    node: max,
                    num_nodes,
                });
            }
        }
        data = &data[len..];
        batches.push(batch);
    }
    if !data.is_empty() {
        return Err(corrupt("trailing bytes after last batch"));
    }
    Ok(batches)
}

/// Reads an update stream in either format, sniffing the magic: files
/// starting with `PCPMUS01` decode as binary, anything else parses as
/// the text format.
pub fn read_updates_auto(data: &[u8], num_nodes: u32) -> Result<Vec<UpdateBatch>, StreamError> {
    if data.starts_with(STREAM_MAGIC) {
        read_updates_binary_bytes(data, num_nodes)
    } else {
        read_updates(data, num_nodes)
    }
}

/// Parameters of the seeded random update generator.
#[derive(Clone, Copy, Debug)]
pub struct UpdateGenConfig {
    /// Number of batches.
    pub batches: usize,
    /// Ops per batch.
    pub batch_size: usize,
    /// Fraction of each batch that deletes existing edges (the rest
    /// inserts new ones).
    pub delete_frac: f64,
    /// When set, every batch draws its *sources* from this many
    /// randomly chosen partitions of `partition_nodes` nodes — the
    /// locality knob that makes incremental bin repair shine.
    pub locality: Option<Locality>,
    /// RNG seed: the same seed over the same base graph reproduces the
    /// same update stream.
    pub seed: u64,
}

/// Restricts each generated batch to a few source partitions.
#[derive(Clone, Copy, Debug)]
pub struct Locality {
    /// Source-partition size in nodes (match the engine's).
    pub partition_nodes: u32,
    /// Distinct source partitions each batch may touch.
    pub partitions_per_batch: u32,
}

impl Default for UpdateGenConfig {
    fn default() -> Self {
        Self {
            batches: 10,
            batch_size: 100,
            delete_frac: 0.3,
            locality: None,
            seed: 42,
        }
    }
}

/// Generates a coherent, seeded update stream against `base`: batches
/// chain (an edge inserted in batch `i` may be deleted in batch `j>i`),
/// deletes always hit a currently-present edge and inserts a
/// currently-absent one, so every op is effective on replay.
pub fn gen_updates(base: &Csr, cfg: &UpdateGenConfig) -> Result<Vec<UpdateBatch>, StreamError> {
    let n = base.num_nodes();
    if n < 2 {
        return Err(StreamError::BadConfig(
            "update generation needs at least two nodes",
        ));
    }
    if !(0.0..=1.0).contains(&cfg.delete_frac) {
        return Err(StreamError::BadConfig("delete_frac must be in [0, 1]"));
    }
    if let Some(loc) = cfg.locality {
        if loc.partition_nodes == 0 || loc.partitions_per_batch == 0 {
            return Err(StreamError::BadConfig(
                "locality partitions must be at least 1",
            ));
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Live edge set, kept in sync across batches.
    let mut edges: Vec<(u32, u32)> = base.edges().collect();
    let mut present: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
    let mut batches = Vec::with_capacity(cfg.batches);
    for _ in 0..cfg.batches {
        // The per-batch source pool under the locality knob.
        let pick_src = |rng: &mut StdRng, pool: &[u32]| -> u32 {
            if pool.is_empty() {
                rng.gen_range(0..n)
            } else {
                pool[rng.gen_range(0..pool.len())]
            }
        };
        let src_pool: Vec<u32> = match cfg.locality {
            None => Vec::new(),
            Some(loc) => {
                let q = loc.partition_nodes;
                let k = if n == 0 { 1 } else { (n - 1) / q + 1 };
                let mut parts: Vec<u32> = (0..loc.partitions_per_batch)
                    .map(|_| rng.gen_range(0..k))
                    .collect();
                parts.sort_unstable();
                parts.dedup();
                parts
                    .iter()
                    .flat_map(|&p| p * q..((p + 1) * q).min(n))
                    .collect()
            }
        };
        let mut log = UpdateLog::new(n);
        let deletes = (cfg.batch_size as f64 * cfg.delete_frac).round() as usize;
        // Edges touched earlier in THIS batch: a delete+reinsert (or
        // insert+delete) of the same edge collapses under last-op-wins
        // into a single op that is a no-op on replay, breaking the
        // every-op-is-effective guarantee.
        let mut deleted_now: std::collections::HashSet<(u32, u32)> =
            std::collections::HashSet::new();
        let mut inserted_now: std::collections::HashSet<(u32, u32)> =
            std::collections::HashSet::new();
        for i in 0..cfg.batch_size {
            if i < deletes && !edges.is_empty() {
                // Delete a present edge, preferring the locality pool.
                let mut victim = None;
                for _ in 0..64 {
                    let e = edges[rng.gen_range(0..edges.len())];
                    if (src_pool.is_empty() || src_pool.binary_search(&e.0).is_ok())
                        && present.contains(&e)
                        && !inserted_now.contains(&e)
                    {
                        victim = Some(e);
                        break;
                    }
                }
                if let Some(e) = victim {
                    present.remove(&e);
                    deleted_now.insert(e);
                    log.delete(e.0, e.1).expect("validated");
                    continue;
                }
            }
            // Insert an edge absent from the pre-batch set and untouched
            // by this batch.
            for _ in 0..64 {
                let s = pick_src(&mut rng, &src_pool);
                let t = rng.gen_range(0..n);
                if s != t && !present.contains(&(s, t)) && !deleted_now.contains(&(s, t)) {
                    present.insert((s, t));
                    inserted_now.insert((s, t));
                    edges.push((s, t));
                    log.insert(s, t).expect("validated");
                    break;
                }
            }
        }
        batches.push(log.seal());
    }
    Ok(batches)
}

/// Replay configuration.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Engine configuration (partition bytes, damping, tolerance,
    /// compact bins, threads). Set a tolerance — the PageRank phases
    /// run to convergence.
    pub cfg: PcpmConfig,
    /// Dataplane to prepare and repair.
    pub backend: BackendKind,
    /// [`DeltaGraph`] compaction threshold.
    pub compaction_threshold: f64,
    /// Also run a cold `pagerank` per batch and record the maximum
    /// absolute divergence of the incremental scores.
    pub verify: bool,
    /// Engine-snapshot cache (PCPM backend only). When the file exists,
    /// the base engine is loaded from it — skipping the base prepare —
    /// after verifying it matches the base graph and config; when it
    /// does not, the cold-built base engine is saved there. After the
    /// replay, the engine's **final** state (the [`DeltaGraph`] overlay
    /// folded through every batch and compaction) is written next to it
    /// (see [`final_cache_path`]) so a later run can resume serving
    /// post-stream rankings without replaying anything.
    pub cache: Option<PathBuf>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            cfg: PcpmConfig::default()
                .with_iterations(500)
                .with_tolerance(1e-9),
            backend: BackendKind::Pcpm,
            compaction_threshold: crate::delta::DEFAULT_COMPACTION_THRESHOLD,
            verify: false,
            cache: None,
        }
    }
}

impl ReplayConfig {
    /// Routes the base engine through the snapshot cache at `path`
    /// (load when present, save after a cold build — see the field
    /// docs). `ReplayConfig` stopped being `Copy` when it gained this
    /// path; clone a shared base config and chain this builder instead
    /// of rebuilding the struct by hand:
    ///
    /// ```ignore
    /// let rc_cached = rc.clone().with_cache("base.pcpmc");
    /// ```
    pub fn with_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache = Some(path.into());
        self
    }

    /// Sets the engine configuration.
    pub fn with_config(mut self, cfg: PcpmConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Turns per-batch cold-PageRank verification on or off.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }
}

/// Where [`replay`] writes the post-stream engine state for a given
/// cache path: `base.pcpmc` → `base.final.pcpmc`.
pub fn final_cache_path(cache: &Path) -> PathBuf {
    cache.with_extension("final.pcpmc")
}

/// Per-batch replay measurements.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Effective ops applied (after set-semantics filtering).
    pub ops: usize,
    /// Requested ops that were no-ops.
    pub ignored: usize,
    /// Source partitions whose bins were dirtied.
    pub touched_partitions: u32,
    /// Total source partitions.
    pub total_partitions: u32,
    /// How the engine absorbed the batch.
    pub outcome: UpdateOutcome,
    /// Wall-clock of `Engine::update` (incremental bin repair).
    pub repair: Duration,
    /// Wall-clock of a from-scratch engine build over the same
    /// snapshot (the cost the repair path avoids).
    pub full_prepare: Duration,
    /// Wall-clock of `incremental_pagerank`.
    pub incremental_pr: Duration,
    /// Residual pushes the incremental solver spent.
    pub pushes: usize,
    /// Max |incremental − cold| when verification ran.
    pub divergence: Option<f64>,
    /// Whether the overlay compacted after this batch.
    pub compacted: bool,
}

/// The whole replay: initial preparation plus one report per batch.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Initial full preparation time of the base engine — the snapshot
    /// load time when [`Self::loaded_from_snapshot`] is set.
    pub base_prepare: Duration,
    /// Initial cold PageRank time (the starting fixed point).
    pub base_pagerank: Duration,
    /// Per-batch measurements, in replay order.
    pub batches: Vec<BatchReport>,
    /// Final PageRank scores after the last batch.
    pub scores: Vec<f32>,
    /// Whether the base engine came from the snapshot cache instead of
    /// a cold prepare.
    pub loaded_from_snapshot: bool,
    /// Where the post-stream engine state was saved, when a cache was
    /// configured.
    pub final_cache: Option<PathBuf>,
}

impl ReplayReport {
    /// Total repair time across batches.
    pub fn total_repair(&self) -> Duration {
        self.batches.iter().map(|b| b.repair).sum()
    }

    /// Total from-scratch preparation time the repairs avoided.
    pub fn total_full_prepare(&self) -> Duration {
        self.batches.iter().map(|b| b.full_prepare).sum()
    }
}

/// Replays `batches` against `base`: each batch flows through
/// [`DeltaGraph::apply`] → [`Engine::update`] (timed against a full
/// rebuild of the same snapshot) → [`incremental_pagerank`], keeping
/// rankings continuously fresh.
pub fn replay(
    base: Arc<Csr>,
    batches: &[UpdateBatch],
    rc: &ReplayConfig,
) -> Result<ReplayReport, StreamError> {
    rc.cfg.validate().map_err(StreamError::Engine)?;
    if rc.cache.is_some() && rc.backend != BackendKind::Pcpm {
        return Err(StreamError::Engine(PcpmError::Snapshot(
            SnapshotError::Unsupported("the snapshot cache requires the PCPM backend"),
        )));
    }
    let mut delta = DeltaGraph::new(Arc::clone(&base), rc.cfg.partition_nodes())?
        .with_compaction_threshold(rc.compaction_threshold)?;
    let t0 = Instant::now();
    let mut loaded_from_snapshot = false;
    let mut engine = match rc.cache.as_deref() {
        // Build-once, serve-many: a present cache must capture exactly
        // this base graph under exactly this config, or fail loudly.
        Some(path) if path.exists() => {
            let mut b = SnapshotEngineBuilder::<PlusF32>::open(path)?
                .expect_config(&rc.cfg, false)?
                .expect_graph(&base)?
                .kernel(rc.cfg.kernel);
            if let Some(t) = rc.cfg.threads {
                b = b.threads(t);
            }
            loaded_from_snapshot = true;
            b.build()?
        }
        _ => {
            let engine = Engine::<PlusF32>::builder_shared(&base)
                .config(rc.cfg)
                .backend(rc.backend)
                .build()?;
            if let Some(path) = &rc.cache {
                engine.save_snapshot(path)?;
            }
            engine
        }
    };
    let base_prepare = t0.elapsed();
    let t0 = Instant::now();
    let mut scores = pagerank_with_unified_engine(&base, &rc.cfg, &mut engine, None)?.scores;
    let base_pagerank = t0.elapsed();

    let mut reports = Vec::with_capacity(batches.len());
    for (batch_idx, batch) in batches.iter().enumerate() {
        let _span = pcpm_core::telemetry::span_n("replay_batch", batch_idx as u64);
        let stats = delta.apply(batch)?;
        let snap = delta.snapshot();

        let t0 = Instant::now();
        let outcome = engine.update(&snap, None, &stats.applied)?;
        let repair = t0.elapsed();

        let t0 = Instant::now();
        let mut fresh = Engine::<PlusF32>::builder_shared(&snap)
            .config(rc.cfg)
            .backend(rc.backend)
            .build()?;
        let full_prepare = t0.elapsed();

        let t0 = Instant::now();
        let warm = incremental_pagerank(&snap, &stats.applied, &scores, &rc.cfg)?;
        let incremental_pr = t0.elapsed();
        scores = warm.scores;

        // The engine built for the full-prepare timing doubles as the
        // cold-start reference when verification is on.
        let divergence = if rc.verify {
            let cold = pagerank_with_unified_engine(&snap, &rc.cfg, &mut fresh, None)?;
            Some(
                scores
                    .iter()
                    .zip(&cold.scores)
                    .map(|(&a, &b)| (f64::from(a) - f64::from(b)).abs())
                    .fold(0.0f64, f64::max),
            )
        } else {
            None
        };
        drop(fresh);

        reports.push(BatchReport {
            ops: stats.applied.len(),
            ignored: stats.ignored,
            touched_partitions: stats.touched_partitions.len() as u32,
            total_partitions: delta.num_partitions(),
            outcome,
            repair,
            full_prepare,
            incremental_pr,
            pushes: warm.iterations,
            divergence,
            compacted: stats.compacted,
        });
    }
    // Persist the post-stream state: the engine has absorbed every
    // batch (through the DeltaGraph's materialized snapshots, including
    // any compactions), so this snapshot resumes serving exactly where
    // the stream left off.
    let final_cache = match &rc.cache {
        Some(path) => {
            let fp = final_cache_path(path);
            engine.save_snapshot(&fp)?;
            Some(fp)
        }
        None => None,
    };
    Ok(ReplayReport {
        base_prepare,
        base_pagerank,
        batches: reports,
        scores,
        loaded_from_snapshot,
        final_cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpm_graph::gen::{rmat, RmatConfig};

    #[test]
    fn update_file_round_trips() {
        let batches = vec![
            UpdateBatch::from_parts(vec![(0, 1), (2, 3)], vec![(4, 5)]),
            UpdateBatch::from_parts(vec![], vec![(1, 0)]),
        ];
        let mut buf = Vec::new();
        write_updates(&mut buf, &batches).unwrap();
        let back = read_updates(&buf[..], 6).unwrap();
        assert_eq!(back, batches);
    }

    #[test]
    fn binary_update_stream_round_trips_and_sniffs() {
        let batches = vec![
            UpdateBatch::from_parts(vec![(0, 1), (2, 3)], vec![(4, 5)]),
            UpdateBatch::default(),
            UpdateBatch::from_parts(vec![], vec![(1, 0)]),
        ];
        let mut bin = Vec::new();
        write_updates_binary(&mut bin, &batches).unwrap();
        assert_eq!(read_updates_binary(&bin[..], 6).unwrap(), batches);
        // Auto-detection routes by magic.
        assert_eq!(read_updates_auto(&bin, 6).unwrap(), batches);
        let mut text = Vec::new();
        write_updates(&mut text, &batches).unwrap();
        assert_eq!(read_updates_auto(&text, 6).unwrap(), batches);

        // Node validation still applies on the binary path.
        assert!(matches!(
            read_updates_binary(&bin[..], 5),
            Err(StreamError::NodeOutOfRange { node: 5, .. })
        ));
        // Corruption inside a batch blob is detected by its checksum.
        let mut bad = bin.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            read_updates_binary(&bad[..], 6),
            Err(StreamError::Parse { .. })
        ));
        // Truncation is detected.
        assert!(read_updates_binary(&bin[..bin.len() - 3], 6).is_err());
    }

    mod binary_stream_props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn binary_stream_property_round_trip(
                raw in proptest::collection::vec(
                    (0u32..64, 0u32..64, any::<bool>()), 0..40),
                splits in proptest::collection::vec(0usize..40, 0..4),
            ) {
                // Partition the op list into batches at random split
                // points, keeping each batch canonical (sorted, deduped,
                // disjoint sections).
                let mut splits = splits;
                splits.push(raw.len());
                splits.sort_unstable();
                let mut batches = Vec::new();
                let mut start = 0usize;
                for &end in &splits {
                    let end = end.min(raw.len()).max(start);
                    let mut ins = Vec::new();
                    let mut del = Vec::new();
                    for &(s, t, is_ins) in &raw[start..end] {
                        if is_ins {
                            ins.push((s, t));
                        } else {
                            del.push((s, t));
                        }
                    }
                    ins.sort_unstable();
                    ins.dedup();
                    del.sort_unstable();
                    del.dedup();
                    del.retain(|e| ins.binary_search(e).is_err());
                    batches.push(UpdateBatch::from_parts(ins, del));
                    start = end;
                }
                let mut bin = Vec::new();
                write_updates_binary(&mut bin, &batches).unwrap();
                prop_assert_eq!(read_updates_binary(&bin[..], 64).unwrap(), batches.clone());
                // Per-batch blob round-trip as well.
                for b in &batches {
                    prop_assert_eq!(&UpdateBatch::from_bytes(&b.to_bytes()).unwrap(), b);
                }
            }
        }
    }

    #[test]
    fn read_rejects_malformed_lines() {
        assert!(matches!(
            read_updates("~ 1 2\n".as_bytes(), 10),
            Err(StreamError::Parse { line: 1, .. })
        ));
        assert!(read_updates("+ 1\n".as_bytes(), 10).is_err());
        assert!(read_updates("+ 1 99\n".as_bytes(), 10).is_err());
        // Comments, blanks and a trailing unterminated batch are fine.
        let b = read_updates("# hi\n\n+ 1 2\n".as_bytes(), 10).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].inserts(), &[(1, 2)]);
    }

    #[test]
    fn generated_updates_are_seeded_and_effective() {
        let g = rmat(&RmatConfig::graph500(7, 6, 9)).unwrap();
        let cfg = UpdateGenConfig {
            batches: 4,
            batch_size: 30,
            delete_frac: 0.4,
            locality: None,
            seed: 7,
        };
        let a = gen_updates(&g, &cfg).unwrap();
        let b = gen_updates(&g, &cfg).unwrap();
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(
            a,
            gen_updates(&g, &UpdateGenConfig { seed: 8, ..cfg }).unwrap()
        );
        // Every op must be effective when replayed in order.
        let mut dg = DeltaGraph::new(Arc::new(g), 16).unwrap();
        for batch in &a {
            let stats = dg.apply(batch).unwrap();
            assert_eq!(stats.ignored, 0, "generator promised effective ops");
            assert_eq!(stats.applied.len(), batch.len());
        }
    }

    #[test]
    fn locality_restricts_touched_partitions() {
        let g = rmat(&RmatConfig::graph500(9, 8, 3)).unwrap();
        let q = 32;
        let cfg = UpdateGenConfig {
            batches: 5,
            batch_size: 40,
            delete_frac: 0.25,
            locality: Some(Locality {
                partition_nodes: q,
                partitions_per_batch: 2,
            }),
            seed: 11,
        };
        for batch in gen_updates(&g, &cfg).unwrap() {
            assert!(batch.touched_src_partitions(q).len() <= 2);
        }
    }

    #[test]
    fn repair_beats_full_prepare_on_sparse_batches() {
        // The acceptance bar: a batch touching <5% of partitions must
        // repair bins measurably faster than a full `prepare`.
        use pcpm_core::algebra::PlusF32;
        let base = Arc::new(rmat(&RmatConfig::graph500(13, 8, 9)).unwrap());
        let cfg = PcpmConfig::default().with_partition_bytes(128 * 4); // 64 partitions
        let gen = UpdateGenConfig {
            batches: 1,
            batch_size: 100,
            delete_frac: 0.3,
            locality: Some(Locality {
                partition_nodes: cfg.partition_nodes(),
                partitions_per_batch: 2,
            }),
            seed: 4,
        };
        let batch = gen_updates(&base, &gen).unwrap().remove(0);
        let mut dg = DeltaGraph::new(Arc::clone(&base), cfg.partition_nodes()).unwrap();
        let stats = dg.apply(&batch).unwrap();
        assert!(
            (stats.touched_partitions.len() as f64) < 0.05 * 64.0,
            "batch must touch <5% of the 64 partitions, got {}",
            stats.touched_partitions.len()
        );
        let snap = dg.snapshot();
        let mut engine = Engine::<PlusF32>::builder_shared(&base)
            .config(cfg)
            .build()
            .unwrap();
        // Min-of-3 on both sides de-noises scheduler jitter; the repair
        // does strictly less work (2 of 64 partitions + block copies).
        let mut repair = Duration::MAX;
        let mut prepare = Duration::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let outcome = engine.update(&snap, None, &stats.applied).unwrap();
            repair = repair.min(t0.elapsed());
            assert!(matches!(outcome, UpdateOutcome::Repaired(_)));
            let t0 = Instant::now();
            let fresh = Engine::<PlusF32>::builder_shared(&snap)
                .config(cfg)
                .build()
                .unwrap();
            prepare = prepare.min(t0.elapsed());
            drop(fresh);
        }
        assert!(
            repair < prepare,
            "incremental repair ({repair:?}) must beat full prepare ({prepare:?})"
        );
    }

    #[test]
    fn replay_cache_loads_saves_and_resumes_after_stream() {
        use pcpm_core::Snapshot;
        let dir = std::env::temp_dir().join("pcpm_stream_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("base.pcpmc");
        let _ = std::fs::remove_file(&cache);
        let base = Arc::new(rmat(&RmatConfig::graph500(8, 8, 41)).unwrap());
        let gen = UpdateGenConfig {
            batches: 3,
            batch_size: 30,
            delete_frac: 0.3,
            locality: None,
            seed: 13,
        };
        let batches = gen_updates(&base, &gen).unwrap();
        let rc = ReplayConfig::default()
            .with_config(
                PcpmConfig::default()
                    .with_partition_bytes(64 * 4)
                    .with_iterations(300)
                    .with_tolerance(1e-9),
            )
            .with_cache(cache.clone());
        // First run: cold build, base snapshot written.
        let r1 = replay(Arc::clone(&base), &batches, &rc).unwrap();
        assert!(!r1.loaded_from_snapshot);
        assert!(cache.exists());
        let final_cache = r1.final_cache.clone().unwrap();
        assert_eq!(final_cache, final_cache_path(&cache));
        // Second identical run: base engine served from the cache,
        // identical rankings.
        let r2 = replay(Arc::clone(&base), &batches, &rc).unwrap();
        assert!(r2.loaded_from_snapshot);
        assert_eq!(r1.scores, r2.scores);
        // The final snapshot captures the post-stream overlay state: its
        // graph equals the DeltaGraph after every batch (compactions
        // folded in), and a replay over NEW batches resumes from it.
        let final_snap = Snapshot::load(&final_cache).unwrap();
        let mut dg = DeltaGraph::new(Arc::clone(&base), rc.cfg.partition_nodes()).unwrap();
        for b in &batches {
            dg.apply(b).unwrap();
        }
        assert_eq!(*dg.snapshot(), **final_snap.graph());
        let resumed_base = Arc::clone(final_snap.graph());
        let more = gen_updates(&resumed_base, &UpdateGenConfig { seed: 14, ..gen }).unwrap();
        let rc_resume = rc.clone().with_cache(final_cache);
        let r3 = replay(Arc::clone(&resumed_base), &more, &rc_resume).unwrap();
        assert!(r3.loaded_from_snapshot, "resume must skip the base prepare");
        // A stale cache for a different base graph is rejected, typed.
        let other = Arc::new(rmat(&RmatConfig::graph500(7, 6, 5)).unwrap());
        match replay(Arc::clone(&other), &[], &rc) {
            Err(StreamError::Engine(pcpm_core::PcpmError::Snapshot(
                pcpm_core::SnapshotError::ConfigMismatch { field: "graph" },
            ))) => {}
            other => panic!("expected typed graph mismatch, got {other:?}"),
        }
        // A cache with a non-PCPM backend is rejected up front.
        let rc_pull = ReplayConfig {
            backend: BackendKind::Pull,
            ..rc.clone()
        };
        assert!(matches!(
            replay(Arc::clone(&base), &batches, &rc_pull),
            Err(StreamError::Engine(pcpm_core::PcpmError::Snapshot(
                pcpm_core::SnapshotError::Unsupported(_)
            )))
        ));
    }

    #[test]
    fn replay_keeps_ranks_fresh_and_repair_beats_rebuild() {
        let base = Arc::new(rmat(&RmatConfig::graph500(9, 8, 23)).unwrap());
        let gen = UpdateGenConfig {
            batches: 3,
            batch_size: 25,
            delete_frac: 0.3,
            locality: Some(Locality {
                partition_nodes: 64,
                partitions_per_batch: 1,
            }),
            seed: 5,
        };
        let batches = gen_updates(&base, &gen).unwrap();
        let rc = ReplayConfig::default()
            .with_config(
                PcpmConfig::default()
                    .with_partition_bytes(64 * 4)
                    .with_iterations(500)
                    .with_tolerance(1e-9),
            )
            .with_verify(true);
        let report = replay(Arc::clone(&base), &batches, &rc).unwrap();
        assert_eq!(report.batches.len(), 3);
        for b in &report.batches {
            assert!(matches!(b.outcome, UpdateOutcome::Repaired(_)));
            assert!(b.touched_partitions <= 2, "locality held");
            assert!(
                b.divergence.unwrap() < 1e-6,
                "incremental diverged: {:?}",
                b.divergence
            );
        }
    }
}
