//! Convergence behavior: tolerance-driven runs, damping sensitivity, and
//! warm-starting after incremental graph updates.
//!
//! ```sh
//! cargo run --release --example convergence_study
//! ```

use pcpm::core::pagerank::pagerank_warm_start;
use pcpm::prelude::*;

fn main() {
    let graph = pcpm::graph::gen::rmat(&RmatConfig::graph500(14, 16, 23)).expect("generate");
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // --- Iterations needed per tolerance ---
    println!("\niterations to reach an L1 tolerance (damping 0.85):");
    for tol in [1e-3, 1e-5, 1e-7, 1e-9] {
        let cfg = PcpmConfig::default()
            .with_partition_bytes(16 * 1024)
            .with_iterations(500)
            .with_tolerance(tol);
        let r = pagerank(&graph, &cfg).expect("pagerank");
        println!(
            "  tol {tol:>7.0e}: {:>3} iterations (final delta {:.2e})",
            r.iterations, r.last_delta
        );
    }

    // --- Damping factor sensitivity ---
    println!("\ndamping factor vs convergence speed (tol 1e-7):");
    for damping in [0.5, 0.7, 0.85, 0.95] {
        let mut cfg = PcpmConfig::default()
            .with_partition_bytes(16 * 1024)
            .with_iterations(1000)
            .with_tolerance(1e-7);
        cfg.damping = damping;
        let r = pagerank(&graph, &cfg).expect("pagerank");
        println!("  d = {damping:.2}: {:>3} iterations", r.iterations);
    }

    // --- Warm start after an incremental update ---
    let cfg = PcpmConfig::default()
        .with_partition_bytes(16 * 1024)
        .with_iterations(500)
        .with_tolerance(1e-8);
    let cold = pagerank(&graph, &cfg).expect("cold run");

    // Simulate a small batch of new follows: 0.1% extra edges.
    let mut edges: Vec<(u32, u32)> = graph.edges().collect();
    let extra = edges.len() / 1000;
    for i in 0..extra {
        let s = (i as u32 * 97) % graph.num_nodes();
        let t = (i as u32 * 31 + 5) % graph.num_nodes();
        edges.push((s, t));
    }
    let updated = Csr::from_edges(graph.num_nodes(), &edges).expect("updated graph");

    let from_scratch = pagerank(&updated, &cfg).expect("cold rerun");
    let warm = pagerank_warm_start(&updated, &cfg, &cold.scores).expect("warm rerun");
    println!(
        "\nincremental update ({extra} new edges): cold {} iterations, warm {} iterations",
        from_scratch.iterations, warm.iterations
    );
    let max_dev = warm
        .scores
        .iter()
        .zip(&from_scratch.scores)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("warm and cold agree to {max_dev:.1e}");
}
