//! PCPM as a programming model (paper §6): one partition-centric pipeline
//! driving PageRank, personalized PageRank, connected components, BFS and
//! shortest paths.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use pcpm::prelude::*;
use std::collections::HashMap;

fn main() {
    // A road-network-flavored graph: mostly local links plus shortcuts.
    let graph = pcpm::graph::gen::web_crawl(&WebConfig {
        num_nodes: 1 << 14,
        avg_degree: 6,
        ..Default::default()
    })
    .expect("generate");
    let weights = EdgeWeights::random(&graph, 77);
    let cfg = PcpmConfig::default()
        .with_partition_bytes(8 * 1024)
        .with_iterations(30);
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // --- Connected components (min-label propagation) ---
    let labels = connected_components(&graph, &cfg).expect("components");
    let mut sizes: HashMap<u32, u32> = HashMap::new();
    for &l in &labels {
        *sizes.entry(l).or_default() += 1;
    }
    let mut by_size: Vec<(u32, u32)> = sizes.into_iter().collect();
    by_size.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("\nconnected components: {}", by_size.len());
    for (label, size) in by_size.iter().take(3) {
        println!("  component {label:>6}: {size} nodes");
    }

    // --- BFS levels from the largest hub ---
    let indeg = graph.in_degrees();
    let hub = (0..graph.num_nodes())
        .max_by_key(|&v| indeg[v as usize])
        .unwrap();
    let levels = bfs_levels(&graph, hub, &cfg).expect("bfs");
    let reached = levels
        .iter()
        .filter(|&&l| l != pcpm::algos::bfs::UNREACHED)
        .count();
    let ecc = levels
        .iter()
        .filter(|&&l| l != pcpm::algos::bfs::UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    println!("\nBFS from hub {hub}: {reached} nodes reached, eccentricity {ecc}");

    // --- Weighted shortest paths from the same hub ---
    let dist = sssp(&graph, &weights, hub, &cfg).expect("sssp");
    let finite: Vec<f32> = dist.iter().copied().filter(|d| d.is_finite()).collect();
    let avg = finite.iter().sum::<f32>() / finite.len() as f32;
    println!("SSSP from hub {hub}: avg finite distance {avg:.2}");

    // --- Global vs personalized PageRank ---
    let global = pagerank(&graph, &cfg).expect("pagerank");
    let personal = personalized_pagerank(&graph, &[hub], &cfg).expect("ppr");
    let top = |scores: &[f32]| {
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]));
        idx.truncate(5);
        idx
    };
    println!("\ntop-5 global PageRank:      {:?}", top(&global.scores));
    println!(
        "top-5 personalized (hub {hub}): {:?}",
        top(&personal.scores)
    );

    // --- Weighted PageRank ---
    let wpr = weighted_pagerank(&graph, &weights, &cfg).expect("wpr");
    println!("top-5 weighted PageRank:    {:?}", top(&wpr.scores));
    println!(
        "\nall computed on one PCPM pipeline (compression ratio r = {:.2})",
        global.compression_ratio.unwrap_or(1.0)
    );
}
