//! DRAM traffic study: what the paper's Figs. 1, 8 and 12 measure,
//! reproduced with the software memory model on one dataset.
//!
//! ```sh
//! cargo run --release --example memory_study
//! ```

use pcpm::memsim::energy::energy_per_edge_uj;
use pcpm::memsim::{replay_bvgas, replay_pcpm, replay_pdpr, CacheConfig, Region};
use pcpm::prelude::*;

fn main() {
    // A kron-style graph: 128 K nodes (512 KB of vertex values).
    let graph = pcpm::graph::gen::rmat(&RmatConfig::graph500(17, 16, 5)).expect("generate");
    let m = graph.num_edges();
    println!(
        "graph: {} nodes, {} edges ({} KB of vertex values)",
        graph.num_nodes(),
        m,
        graph.num_nodes() * 4 / 1024
    );

    // A last-level cache 4x smaller than the value array — the same
    // oversubscription the paper's datasets have against its 25 MB L3.
    let llc = CacheConfig {
        capacity: 128 * 1024,
        line: 64,
        ways: 16,
    };
    let q = 512; // 2 KB partitions: several hundred partitions, L2-like

    let (pdpr_traffic, cmr) = replay_pdpr(&graph, llc);
    let bvgas_traffic = replay_bvgas(&graph, q, 32, llc);
    let pcpm_traffic = replay_pcpm(&graph, q, llc);

    println!("\nPDPR cache miss ratio on value reads: {cmr:.3}");
    println!(
        "PDPR traffic from vertex values: {:.1}% (Fig. 1)",
        pdpr_traffic.region_fraction(Region::Values) * 100.0
    );

    println!("\nDRAM traffic per edge (Fig. 8) and energy (Fig. 10):");
    for (name, t) in [
        ("PDPR", &pdpr_traffic),
        ("BVGAS", &bvgas_traffic),
        ("PCPM", &pcpm_traffic),
    ] {
        println!(
            "  {name:<6} {:>7.2} B/edge  {:>10} random accesses  {:.5} uJ/edge",
            t.bytes_per_edge(m),
            t.random_accesses,
            energy_per_edge_uj(t, m)
        );
    }

    println!("\nPCPM traffic vs partition size (Fig. 12):");
    for shift in 6..=17 {
        let q = 1u32 << shift;
        if q > graph.num_nodes() {
            break;
        }
        let t = replay_pcpm(&graph, q, llc);
        println!(
            "  q = {q:>7} nodes ({:>5} KB values): {:>6.2} B/edge",
            q * 4 / 1024,
            t.bytes_per_edge(m)
        );
    }
    println!("(traffic falls with partition size until the partition outgrows the cache)");
}
