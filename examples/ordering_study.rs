//! Node-ordering ablation: how labeling locality drives PCPM's
//! compression ratio and the pull baseline's cache behavior (Tables 6/7).
//!
//! ```sh
//! cargo run --release --example ordering_study
//! ```

use pcpm::core::partition::Partitioner;
use pcpm::core::png::{EdgeView, Png};
use pcpm::graph::order::{reorder, OrderingKind};
use pcpm::memsim::{replay_pcpm, replay_pdpr, CacheConfig};
use std::time::Instant;

fn main() {
    let graph = pcpm::graph::gen::web_crawl(&pcpm::graph::gen::WebConfig {
        num_nodes: 1 << 16,
        ..Default::default()
    })
    .expect("generate");
    println!(
        "web crawl: {} nodes, {} edges (original labeling is already local)",
        graph.num_nodes(),
        graph.num_edges()
    );

    let q = 512u32;
    let llc = CacheConfig {
        capacity: 64 * 1024,
        line: 64,
        ways: 16,
    };
    let kinds = [
        OrderingKind::Original,
        OrderingKind::Gorder,
        OrderingKind::Bfs,
        OrderingKind::Dfs,
        OrderingKind::DegreeSort,
        OrderingKind::Rcm,
        OrderingKind::Random,
    ];

    println!(
        "\n{:<10} {:>10} {:>8} {:>14} {:>14} {:>12}",
        "ordering", "reorder(s)", "r", "PCPM B/edge", "PDPR B/edge", "PDPR cmr"
    );
    for kind in kinds {
        let t0 = Instant::now();
        let (g, _) = reorder(&graph, kind, 3).expect("reorder");
        let reorder_s = t0.elapsed().as_secs_f64();
        let parts = Partitioner::new(g.num_nodes(), q).expect("parts");
        let png = Png::build(EdgeView::from_csr(&g), parts, parts);
        let pcpm_traffic = replay_pcpm(&g, q, llc);
        let (pdpr_traffic, cmr) = replay_pdpr(&g, llc);
        println!(
            "{:<10} {:>10.2} {:>8.2} {:>14.2} {:>14.2} {:>12.3}",
            kind.name(),
            reorder_s,
            png.compression_ratio(),
            pcpm_traffic.bytes_per_edge(g.num_edges()),
            pdpr_traffic.bytes_per_edge(g.num_edges()),
            cmr
        );
    }
    println!("\n(higher r => less PCPM traffic; lower cmr => less PDPR traffic —");
    println!(" BVGAS, not shown, is identical under every labeling: the paper's Table 7)");
}
