//! Quickstart: build a graph, run partition-centric PageRank, inspect the
//! result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pcpm::prelude::*;

fn main() {
    // A small scale-free graph: 2^14 nodes, average degree 16, Graph500
    // R-MAT skew — the same family as the paper's `kron` dataset.
    let graph = pcpm::graph::gen::rmat(&RmatConfig::graph500(14, 16, 42)).expect("generate");
    println!(
        "graph: {} nodes, {} edges, avg degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // Default configuration: 256 KB partitions, damping 0.85, 20
    // iterations — the paper's settings. Add a tolerance to stop early.
    let cfg = PcpmConfig::default().with_tolerance(1e-7);
    let result = pagerank(&graph, &cfg).expect("pagerank");

    println!(
        "ran {} iterations ({}), compression ratio r = {:.2}",
        result.iterations,
        if result.converged {
            "converged"
        } else {
            "iteration cap"
        },
        result.compression_ratio.unwrap_or(1.0)
    );
    println!(
        "phase times: scatter {:?}, gather {:?}, apply {:?}",
        result.timings.scatter, result.timings.gather, result.timings.apply
    );

    // Top-10 nodes by PageRank.
    let mut ranked: Vec<(u32, f32)> = result
        .scores
        .iter()
        .copied()
        .enumerate()
        .map(|(v, s)| (v as u32, s))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 10 nodes:");
    for (v, s) in ranked.iter().take(10) {
        println!(
            "  node {v:>6}  score {s:.3e}  in-degree {}",
            graph.in_degrees()[*v as usize]
        );
    }

    // Cross-check against the serial f64 oracle.
    let oracle = serial_pagerank(&graph, &cfg);
    let max_err = result
        .scores
        .iter()
        .zip(&oracle)
        .map(|(&a, &b)| (f64::from(a) - b).abs())
        .fold(0.0f64, f64::max);
    println!("max abs deviation from f64 serial oracle: {max_err:.2e}");
}
