//! Influencer detection on a follower network, comparing all kernels.
//!
//! Runs PDPR, push, BVGAS and PCPM on the same R-MAT follower graph,
//! verifies they agree, and reports per-iteration times and the phase
//! split of Table 5.
//!
//! ```sh
//! cargo run --release --example social_influence
//! ```

use pcpm::prelude::*;

fn main() {
    // Twitter-like follower graph: skewed in-degree (celebrities).
    let graph = pcpm::graph::gen::rmat(&RmatConfig {
        scale: 15,
        edge_factor: 24,
        a: 0.57,
        b: 0.19,
        c: 0.19,
        noise: 0.1,
        seed: 7,
    })
    .expect("generate");
    println!(
        "follower graph: {} users, {} follows",
        graph.num_nodes(),
        graph.num_edges()
    );

    let cfg = PcpmConfig::default()
        .with_partition_bytes(32 * 1024)
        .with_iterations(20);

    let pd = pdpr(&graph, &cfg).expect("pdpr");
    let ps = push_pagerank(&graph, &cfg).expect("push");
    let bv = bvgas(&graph, &cfg).expect("bvgas");
    let pc = pagerank(&graph, &cfg).expect("pcpm");

    let m = graph.num_edges();
    println!("\nper-iteration time and throughput (20 iterations):");
    for (name, r) in [("PDPR", &pd), ("push", &ps), ("BVGAS", &bv), ("PCPM", &pc)] {
        println!(
            "  {name:<6} {:>8.2} ms/iter  {:>6.3} GTEPS  (scatter {:.0}%, gather {:.0}%)",
            r.timings.total().as_secs_f64() * 1e3 / r.iterations as f64,
            r.gteps(m),
            100.0 * r.timings.scatter.as_secs_f64() / r.timings.total().as_secs_f64(),
            100.0 * r.timings.gather.as_secs_f64() / r.timings.total().as_secs_f64(),
        );
    }

    // All four kernels must agree on the ranking.
    let max_dev = |a: &[f32], b: &[f32]| {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0f32, f32::max)
    };
    println!(
        "\nmax deviation vs PCPM: pdpr {:.1e}, push {:.1e}, bvgas {:.1e}",
        max_dev(&pd.scores, &pc.scores),
        max_dev(&ps.scores, &pc.scores),
        max_dev(&bv.scores, &pc.scores)
    );

    // Top influencers.
    let mut ranked: Vec<(u32, f32)> = pc
        .scores
        .iter()
        .copied()
        .enumerate()
        .map(|(v, s)| (v as u32, s))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let indeg = graph.in_degrees();
    println!("\ntop 5 influencers:");
    for (v, s) in ranked.iter().take(5) {
        println!(
            "  user {v:>6}  rank {s:.3e}  followers {}",
            indeg[*v as usize]
        );
    }
}
