//! Generic SpMV with PCPM (paper §3.5): weighted, non-square matrices.
//!
//! Builds a rectangular random sparse matrix, runs `y = A·x` through the
//! partition-centric engine, validates against a dense reference, and
//! then runs a weighted Markov-chain power iteration (the "PageRank as
//! SpMV" view of Eq. 2) on a column-stochastic matrix.
//!
//! ```sh
//! cargo run --release --example spmv_engine
//! ```

use pcpm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // --- Rectangular SpMV ---
    let (rows, cols, nnz) = (40_000u32, 10_000u32, 400_000usize);
    let triplets: Vec<(u32, u32, f32)> = (0..nnz)
        .map(|_| {
            (
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
                rng.gen_range(-1.0f32..1.0),
            )
        })
        .collect();
    let matrix = SpmvMatrix::from_triplets(rows, cols, &triplets).expect("matrix");
    println!(
        "matrix: {}x{} with {} non-zeros",
        matrix.num_rows(),
        matrix.num_cols(),
        matrix.num_nonzeros()
    );

    let cfg = PcpmConfig::default().with_partition_bytes(16 * 1024);
    let mut engine = matrix.engine(&cfg).expect("engine");
    let report = engine.report();
    println!(
        "PCPM layout: compression ratio {:.2}, preprocessing {:?}",
        report.compression_ratio.unwrap_or(1.0),
        report.preprocess
    );

    let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.01).sin()).collect();
    let mut y = vec![0.0f32; rows as usize];
    let timings = engine.step(&x, &mut y).expect("apply");
    println!(
        "product: scatter {:?}, gather {:?}",
        timings.scatter, timings.gather
    );

    let reference = matrix.reference_apply(&x);
    let max_err = y
        .iter()
        .zip(&reference)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max deviation vs dense reference: {max_err:.2e}");

    // --- Markov chain power iteration ---
    // Random column-stochastic 5000x5000 matrix: each column distributes
    // probability over 8 random successors.
    let n = 5000u32;
    let mut chain: Vec<(u32, u32, f32)> = Vec::new();
    for c in 0..n {
        for _ in 0..8 {
            chain.push((rng.gen_range(0..n), c, 1.0 / 8.0));
        }
    }
    let chain = SpmvMatrix::from_triplets(n, n, &chain).expect("chain");
    let mut engine = chain.engine(&cfg).expect("chain engine");
    let mut pi = vec![1.0f32 / n as f32; n as usize];
    let mut next = vec![0.0f32; n as usize];
    let mut delta = f32::INFINITY;
    let mut iters = 0;
    while delta > 1e-9 && iters < 200 {
        engine.step(&pi, &mut next).expect("apply");
        // Normalize (duplicate triplets were summed, columns may exceed 1).
        let mass: f32 = next.iter().sum();
        delta = pi
            .iter()
            .zip(&next)
            .map(|(&a, &b)| (a - b / mass).abs())
            .sum();
        pi.iter_mut().zip(&next).for_each(|(p, &v)| *p = v / mass);
        iters += 1;
    }
    println!(
        "\nMarkov chain stationary distribution: {iters} power iterations (L1 delta {delta:.1e})"
    );
    let max_pi = pi.iter().cloned().fold(0.0f32, f32::max);
    println!(
        "max stationary probability: {max_pi:.3e} (uniform would be {:.3e})",
        1.0 / n as f32
    );
}
