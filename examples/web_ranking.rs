//! Ranking a synthetic web crawl: the paper's motivating workload.
//!
//! Demonstrates the locality story of §5.3.1: on a crawl whose node IDs
//! already have high locality, PCPM's compression ratio is near optimal;
//! destroying the labeling (random permutation) collapses `r`, and GOrder
//! recovers most of it.
//!
//! ```sh
//! cargo run --release --example web_ranking
//! ```

use pcpm::core::partition::Partitioner;
use pcpm::core::png::{EdgeView, Png};
use pcpm::graph::gen::{web_crawl, WebConfig};
use pcpm::graph::order::{reorder, OrderingKind};
use pcpm::prelude::*;

fn compression_at(g: &Csr, q: u32) -> f64 {
    let parts = Partitioner::new(g.num_nodes(), q).expect("partitioner");
    Png::build(EdgeView::from_csr(g), parts, parts).compression_ratio()
}

fn main() {
    let crawl = web_crawl(&WebConfig {
        num_nodes: 1 << 16,
        ..WebConfig::default()
    })
    .expect("generate crawl");
    println!(
        "web crawl: {} pages, {} links, avg degree {:.1}",
        crawl.num_nodes(),
        crawl.num_edges(),
        crawl.avg_degree()
    );

    let q = 2048; // 8 KB of values per partition at this scale
    println!("\ncompression ratio r at q = {q} nodes:");
    println!("  original labeling : {:.2}", compression_at(&crawl, q));
    for kind in [
        OrderingKind::Random,
        OrderingKind::Bfs,
        OrderingKind::Gorder,
    ] {
        let (relabeled, _) = reorder(&crawl, kind, 1).expect("reorder");
        println!(
            "  {:<18}: {:.2}",
            kind.name(),
            compression_at(&relabeled, q)
        );
    }

    // Rank the pages with PCPM (tolerance-driven).
    let cfg = PcpmConfig::default()
        .with_partition_bytes(q as usize * 4)
        .with_iterations(50)
        .with_tolerance(1e-8);
    let result = pagerank(&crawl, &cfg).expect("pagerank");
    println!(
        "\nPageRank: {} iterations, last L1 delta {:.2e}",
        result.iterations, result.last_delta
    );

    // The generator plants "hub portals" at the lowest IDs; they should
    // dominate the ranking.
    let mut ranked: Vec<(u32, f32)> = result
        .scores
        .iter()
        .copied()
        .enumerate()
        .map(|(v, s)| (v as u32, s))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let hubs_in_top20 = ranked.iter().take(20).filter(|(v, _)| *v < 256).count();
    println!("hub pages in the top 20: {hubs_in_top20}/20");
    for (v, s) in ranked.iter().take(5) {
        println!("  page {v:>6}  score {s:.3e}");
    }
}
