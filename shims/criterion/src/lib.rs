//! Minimal stand-in for the subset of
//! [criterion](https://docs.rs/criterion) this workspace's benches use.
//!
//! Each benchmark runs a small fixed number of timed iterations and
//! prints mean wall-clock time (plus throughput when provided) — no
//! statistical analysis, HTML reports, or command-line filtering. The
//! point is that `cargo bench` builds and produces comparable numbers in
//! an offline environment; swap the real criterion back in for paper
//! -grade confidence intervals.

use std::time::{Duration, Instant};

/// Iterations per benchmark (criterion's warm-up + sampling collapsed).
const MEASURE_ITERS: u32 = 10;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Id with only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURE_ITERS;
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the sample size (accepted for API compatibility; the shim
    /// always runs its fixed iteration count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Records measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64() / f64::from(b.iters.max(1));
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>10.3} Melem/s", n as f64 / per_iter / 1e6)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>10.3} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.3} ms/iter{}",
            self.name,
            id,
            per_iter * 1e3,
            rate
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "bench".into(),
            throughput: None,
            _criterion: self,
        };
        group.bench_function(id, f);
        self
    }
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::new("sum", "1k"), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn criterion_group_macro_compiles_and_runs() {
        benches();
    }
}
