//! Deterministic stand-in for the subset of
//! [proptest](https://docs.rs/proptest) this workspace uses.
//!
//! It implements random-input generation with the same `proptest!` /
//! `Strategy` surface — `prop_map`, `prop_flat_map`, `collection::vec`,
//! `collection::btree_set`, integer-range and tuple strategies, `any`,
//! and a simple-character-class string strategy — but no shrinking: a
//! failing case panics with the ordinary assertion message. Inputs are
//! seeded deterministically, so failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-run generator.
    pub fn deterministic() -> Self {
        Self(StdRng::seed_from_u64(0x5EED_CAFE_F00D_D00D))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// Uniform sample from a range (delegates to the rand shim).
    pub fn sample<S: rand::SampleRange>(&mut self, range: S) -> S::Output {
        self.0.gen_range(range)
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Pattern strategy for strings: supports `[class]{lo,hi}` with literal
/// characters, `a-b` ranges and `\n` / `\t` / `\\` escapes in the class —
/// the only regex shape the workspace's fuzz tests use.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse_simple_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = rng.sample(lo..=hi);
        (0..len)
            .map(|_| class[rng.sample(0..class.len())])
            .collect()
    }
}

/// Parses `[<class>]{lo,hi}` into (expanded class, lo, hi).
fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class_src, rest) = rest.split_at(close);
    let rest = rest.strip_prefix(']')?.strip_prefix('{')?;
    let rest = rest.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);

    let mut class = Vec::new();
    let mut chars = class_src.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' {
            match chars.next()? {
                'n' => '\n',
                't' => '\t',
                other => other,
            }
        } else {
            c
        };
        if chars.peek() == Some(&'-') && chars.clone().nth(1).is_some() {
            chars.next(); // consume '-'
            let end = chars.next()?;
            for v in c as u32..=end as u32 {
                class.push(char::from_u32(v)?);
            }
        } else {
            class.push(c);
        }
    }
    (!class.is_empty()).then_some((class, lo, hi))
}

/// Full-type-range strategy, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types [`any`] can generate.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Vec of `size`-range length with elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// BTreeSet built from up to `size`-range samples (duplicates merge,
    /// so the set may come out smaller than the drawn length, exactly as
    /// with real proptest's collection strategies before shrinking).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = rng.sample(self.size.clone());
            let mut set = BTreeSet::new();
            // Up to 4x oversampling: duplicates merge, so reaching the
            // drawn length can take more than `len` draws.
            for _ in 0..len * 4 {
                if set.len() >= len {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assertion that aborts the current case (plain `assert!` here — the
/// shim has no shrinking phase to unwind into).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Property-test block: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic();
        let s = (1u32..5, 0i32..3);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..5).contains(&a) && (0..3).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::TestRng::deterministic();
        let s = (2u32..10).prop_flat_map(|n| (0..n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert!(v < n);
        }
    }

    #[test]
    fn vec_strategy_honours_size() {
        let mut rng = crate::TestRng::deterministic();
        let s = crate::collection::vec(0u8..4, 2..6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn string_pattern_generates_matching_chars() {
        let mut rng = crate::TestRng::deterministic();
        let s = "[ -~\n]{0,40}";
        for _ in 0..50 {
            let text = Strategy::generate(&s, &mut rng);
            assert!(text.len() <= 40);
            assert!(text.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u32..10, v in crate::collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
        }
    }
}
