//! Deterministic stand-in for the subset of [rand](https://docs.rs/rand)
//! this workspace uses: `StdRng` seeded via `seed_from_u64`, `gen` /
//! `gen_range` over the integer and float ranges the generators need, and
//! `SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — not cryptographic, but high-quality
//! enough for synthetic graph generation and fully deterministic per
//! seed, which is all the workspace requires. Distributions differ from
//! the real `rand` crate, so regenerated graphs differ in the exact edge
//! sets but keep the same statistical shape; every test in the workspace
//! derives its expectations from the generated graph rather than from
//! hard-coded edge lists.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples a value from the standard distribution of the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The sampled scalar type.
    type Output;
    /// Samples uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Samples a value of an inferable [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling of slices in place.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
            let n = rng.gen_range(-10i32..10);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }
}
