//! Parallel iterators: indexed producers over slices, `Vec`s and ranges,
//! the combinators the workspace uses (`map` / `zip` / `enumerate` /
//! `filter`), and chunk-deterministic terminal operations.
//!
//! # Determinism contract
//!
//! Every terminal op decomposes `0..len` into chunks whose boundaries
//! depend only on `len` ([`crate::pool::chunk_size_for`]), drives each
//! chunk sequentially in ascending index order, and combines per-chunk
//! results (`sum` partials, `collect` segments) in chunk order. Which
//! thread runs a chunk is scheduler-dependent; the observable result is
//! not. In particular `sum::<f64>()` rounds identically on 1 and N
//! threads — the property the workspace's determinism suite asserts.

// pcpm-lint: allow-file(unsafe-budget, reason = "vendored rayon stand-in: slice/UnsafeCell producer internals carry per-site SAFETY arguments and are audited as a unit; replaced wholesale if real rayon returns")

use crate::pool;
use std::cell::UnsafeCell;
use std::iter::Sum;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::Range;

/// A splittable data-parallel source with a known length.
///
/// `pi_len` / `pi_drive` are the shim's internal driving surface (the
/// `pi_` prefix keeps them clear of inherent methods on user types);
/// user code only touches the provided combinators, which mirror rayon.
pub trait ParallelIterator: Sized + Send + Sync {
    /// Element type.
    type Item: Send;

    /// Total number of underlying index slots.
    fn pi_len(&self) -> usize;

    /// Feeds the items of `range` to `sink`, in ascending index order.
    ///
    /// # Safety
    ///
    /// Ranges passed across all concurrent calls must be disjoint:
    /// by-value and by-`&mut` producers hand out exclusive access per
    /// index slot.
    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, range: Range<usize>, sink: &mut F);

    /// Maps each item through `f` (rayon: `ParallelIterator::map`).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Keeps items for which `pred` holds. The result is unindexed: it
    /// supports `map` / `for_each` / `sum` / `collect`, not `zip` or
    /// `enumerate` (same restriction as rayon).
    fn filter<P>(self, pred: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, pred }
    }

    /// Consumes every item in parallel.
    fn for_each<OP>(self, op: OP)
    where
        OP: Fn(Self::Item) + Sync + Send,
    {
        let len = self.pi_len();
        pool::run_job(len, &|range: Range<usize>| {
            // SAFETY: the pool hands out disjoint ranges.
            unsafe { self.pi_drive(range, &mut |item| op(item)) };
        });
    }

    /// Sums the items. Per-chunk partials accumulate left to right and
    /// combine in chunk order, so the result is bit-stable for floats.
    fn sum<S>(self) -> S
    where
        S: Send + Sum<Self::Item> + Sum<S>,
    {
        let parts = pool::run_job_collect(self.pi_len(), |range: Range<usize>| {
            let mut acc: Option<S> = None;
            // SAFETY: disjoint ranges from the pool.
            unsafe {
                self.pi_drive(range, &mut |item| {
                    let v: S = std::iter::once(item).sum();
                    acc = Some(match acc.take() {
                        None => v,
                        Some(a) => [a, v].into_iter().sum(),
                    });
                });
            }
            acc
        });
        parts.into_iter().flatten().sum()
    }

    /// Collects into `C`, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// A [`ParallelIterator`] with O(1) random access — the producers `zip`
/// and `enumerate` are defined on.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Produces the item at `i`.
    ///
    /// # Safety
    ///
    /// Each index may be consumed at most once across all calls
    /// (by-value and by-`&mut` producers hand out owned / exclusive
    /// access).
    unsafe fn pi_get(&self, i: usize) -> Self::Item;

    /// Pairs each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Iterates two equal-shape sources in lockstep. Like rayon, the
    /// result is truncated to the shorter side (for by-value producers
    /// the longer side's tail is simply never consumed).
    fn zip<Z>(self, other: Z) -> Zip<Self, Z::Iter>
    where
        Z: IntoParallelIterator,
        Z::Iter: IndexedParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }
}

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// The produced iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` — borrowing conversion.
pub trait IntoParallelRefIterator<'a> {
    /// The produced iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type (a shared reference).
    type Item: Send + 'a;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `par_iter_mut()` — mutably borrowing conversion.
pub trait IntoParallelRefMutIterator<'a> {
    /// The produced iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Element type (an exclusive reference).
    type Item: Send + 'a;
    /// Mutably borrows `self` as a parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// Types collectable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds `Self`, preserving index order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par_iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par_iter: P) -> Self {
        let len = par_iter.pi_len();
        let mut chunks = pool::run_job_collect(len, |range: Range<usize>| {
            let mut seg = Vec::with_capacity(range.len());
            // SAFETY: disjoint ranges from the pool.
            unsafe { par_iter.pi_drive(range, &mut |item| seg.push(item)) };
            seg
        });
        let mut out = Vec::with_capacity(len);
        for seg in &mut chunks {
            out.append(seg);
        }
        out
    }
}

// --- producers -------------------------------------------------------------

/// Shared-slice producer (`par_iter`).
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + Send> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, range: Range<usize>, sink: &mut F) {
        for item in &self.slice[range] {
            sink(item);
        }
    }
}

impl<'a, T: Sync + Send> IndexedParallelIterator for SliceParIter<'a, T> {
    unsafe fn pi_get(&self, i: usize) -> Self::Item {
        &self.slice[i]
    }
}

/// Exclusive-slice producer (`par_iter_mut`). Holds a raw pointer so
/// disjoint subranges can be driven from different workers.
pub struct SliceParIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: every index slot is handed out at most once (the pool's
// disjoint-range contract), so no two threads alias the same element.
unsafe impl<T: Send> Send for SliceParIterMut<'_, T> {}
unsafe impl<T: Send> Sync for SliceParIterMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;

    fn pi_len(&self) -> usize {
        self.len
    }

    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, range: Range<usize>, sink: &mut F) {
        for i in range {
            sink(self.pi_get(i));
        }
    }
}

impl<'a, T: Send> IndexedParallelIterator for SliceParIterMut<'a, T> {
    unsafe fn pi_get(&self, i: usize) -> Self::Item {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// By-value `Vec` producer (`into_par_iter`). Elements are moved out at
/// most once; the backing allocation is freed on drop without dropping
/// moved-out elements. Elements that are never consumed — a job
/// poisoned by a panic, a `zip` with a shorter side truncating the
/// tail, or an iterator dropped without running a terminal op — leak
/// rather than risk a double drop. Every call site in this workspace
/// consumes fully and holds no-`Drop` element types, so nothing leaks
/// in practice.
pub struct VecParIter<T> {
    data: Vec<UnsafeCell<ManuallyDrop<T>>>,
}

// SAFETY: each element is moved out at most once under the pool's
// disjoint-range contract; the Vec itself is never reallocated.
unsafe impl<T: Send> Send for VecParIter<T> {}
unsafe impl<T: Send> Sync for VecParIter<T> {}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn pi_len(&self) -> usize {
        self.data.len()
    }

    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, range: Range<usize>, sink: &mut F) {
        for i in range {
            sink(self.pi_get(i));
        }
    }
}

impl<T: Send> IndexedParallelIterator for VecParIter<T> {
    unsafe fn pi_get(&self, i: usize) -> T {
        ManuallyDrop::take(&mut *self.data[i].get())
    }
}

/// Numeric-range producer (`(a..b).into_par_iter()`).
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

macro_rules! range_par_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;

            fn pi_len(&self) -> usize {
                self.len
            }

            unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, range: Range<usize>, sink: &mut F) {
                for i in range {
                    sink(self.pi_get(i));
                }
            }
        }

        impl IndexedParallelIterator for RangeParIter<$t> {
            unsafe fn pi_get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = RangeParIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeParIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeParIter {
                    start: self.start,
                    len,
                }
            }
        }
    )*};
}

range_par_iter!(u32, u64, usize, i32, i64);

// --- conversions -----------------------------------------------------------

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecParIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecParIter<T> {
        let mut v = ManuallyDrop::new(self);
        let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
        // SAFETY: UnsafeCell<ManuallyDrop<T>> is layout-identical to T.
        let data =
            unsafe { Vec::from_raw_parts(ptr as *mut UnsafeCell<ManuallyDrop<T>>, len, cap) };
        VecParIter { data }
    }
}

impl<'a, T: Sync + Send> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceParIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + Send> IntoParallelIterator for &'a [T] {
    type Iter = SliceParIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = SliceParIterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> SliceParIterMut<'a, T> {
        self.as_mut_slice().into_par_iter()
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = SliceParIterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> SliceParIterMut<'a, T> {
        SliceParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceParIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceParIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = SliceParIterMut<'a, T>;
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> SliceParIterMut<'a, T> {
        SliceParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = SliceParIterMut<'a, T>;
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> SliceParIterMut<'a, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

// --- combinators -----------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    unsafe fn pi_drive<G: FnMut(R)>(&self, range: Range<usize>, sink: &mut G) {
        self.base.pi_drive(range, &mut |item| sink((self.f)(item)));
    }
}

impl<P, F, R> IndexedParallelIterator for Map<P, F>
where
    P: IndexedParallelIterator,
    F: Fn(P::Item) -> R + Sync + Send,
    R: Send,
{
    unsafe fn pi_get(&self, i: usize) -> R {
        (self.f)(self.base.pi_get(i))
    }
}

/// See [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
}

impl<P: IndexedParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, range: Range<usize>, sink: &mut F) {
        for i in range {
            sink((i, self.base.pi_get(i)));
        }
    }
}

impl<P: IndexedParallelIterator> IndexedParallelIterator for Enumerate<P> {
    unsafe fn pi_get(&self, i: usize) -> Self::Item {
        (i, self.base.pi_get(i))
    }
}

/// See [`IndexedParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }

    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, range: Range<usize>, sink: &mut F) {
        for i in range {
            sink((self.a.pi_get(i), self.b.pi_get(i)));
        }
    }
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    unsafe fn pi_get(&self, i: usize) -> Self::Item {
        (self.a.pi_get(i), self.b.pi_get(i))
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<P, Pr> {
    base: P,
    pred: Pr,
}

impl<P, Pr> ParallelIterator for Filter<P, Pr>
where
    P: ParallelIterator,
    Pr: Fn(&P::Item) -> bool + Sync + Send,
{
    type Item = P::Item;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    unsafe fn pi_drive<F: FnMut(Self::Item)>(&self, range: Range<usize>, sink: &mut F) {
        self.base.pi_drive(range, &mut |item| {
            if (self.pred)(&item) {
                sink(item);
            }
        });
    }
}

// --- parallel sorting ------------------------------------------------------

/// Parallel sorting on mutable slices (`par_sort*`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel unstable sort (chunk sorts + deterministic merges).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Parallel stable sort.
    fn par_sort(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        crate::sort::par_merge_sort(self, false);
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        crate::sort::par_merge_sort(self, true);
    }
}
