//! Serial stand-in for the subset of [rayon](https://docs.rs/rayon) this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this shim keeps
//! the workspace compiling with the exact `rayon::prelude::*` call sites
//! intact: `par_iter` / `par_iter_mut` / `into_par_iter` return ordinary
//! sequential iterators, and [`ThreadPoolBuilder`] runs closures inline.
//! Every kernel in the workspace was written so that its parallel
//! decomposition is deterministic (exclusive output slices per worker),
//! which means the serial execution produces bit-identical results —
//! swapping the real rayon back in is a one-line change in the root
//! `Cargo.toml` and requires no source edits.

/// Sequential drop-in for `rayon::prelude`.
pub mod prelude {
    /// `into_par_iter()` on any owned collection: sequential `into_iter`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` on any collection whose reference iterates.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type.
        type Iter: Iterator;
        /// Returns the (sequential) shared-reference iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;

        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` on any collection whose mutable reference iterates.
    pub trait IntoParallelRefMutIterator<'a> {
        /// The iterator type.
        type Iter: Iterator;
        /// Returns the (sequential) mutable-reference iterator.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Iter = <&'a mut C as IntoIterator>::IntoIter;

        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_sort_unstable()` and friends on slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential `sort_unstable`.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        /// Sequential `sort`.
        fn par_sort(&mut self)
        where
            T: Ord;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }

        fn par_sort(&mut self)
        where
            T: Ord,
        {
            self.sort();
        }
    }
}

/// Number of worker threads the "pool" runs: always 1 in the serial shim.
pub fn current_num_threads() -> usize {
    1
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never constructed).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread pool build error (unreachable in the serial shim)"
        )
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "thread pool" that runs closures inline on the calling thread.
pub struct ThreadPool {
    _threads: usize,
}

impl ThreadPool {
    /// Runs `op` on the pool — inline, in the serial shim. The `Send`
    /// bounds match the real rayon signature so code written against
    /// the shim compiles unchanged against the real crate.
    pub fn install<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        op()
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested thread count (informational only).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Builds the inline pool; never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            _threads: self.threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 10);
        let doubled: Vec<i32> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn ranges_and_slices_of_mut_slices_work() {
        let mut data = vec![0u32; 6];
        let (a, b) = data.split_at_mut(3);
        vec![a, b]
            .into_par_iter()
            .enumerate()
            .for_each(|(i, s)| s.fill(i as u32));
        assert_eq!(data, vec![0, 0, 0, 1, 1, 1]);
        let total: u32 = (0u32..5).into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 21 * 2), 42);
    }

    #[test]
    fn par_sort_sorts() {
        let mut v = vec![3u8, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
