//! Offline stand-in for the subset of [rayon](https://docs.rs/rayon)
//! this workspace uses — backed by a real `std::thread` work-sharing
//! pool since PR 3 (the build environment has no crates.io access, so
//! upstream rayon cannot be a dependency; swapping it back in remains a
//! one-line change in the root `Cargo.toml` and requires no source
//! edits).
//!
//! # What is real
//!
//! - [`ThreadPool`] spawns persistent named workers
//!   (`ThreadPoolBuilder::num_threads(n)`, `0` = available
//!   parallelism / `RAYON_NUM_THREADS`); dropping the pool shuts the
//!   workers down and joins them.
//! - `par_iter` / `par_iter_mut` / `into_par_iter` over slices, `Vec`s
//!   and integer ranges — the only call-site shapes in the workspace —
//!   run chunked across the pool, as do [`join`] and
//!   `par_sort`/`par_sort_unstable`.
//!
//! # Determinism
//!
//! Every parallel op splits `0..len` into chunks whose boundaries are a
//! pure function of `len` (never of the thread count), drives chunks
//! sequentially in ascending index order, and combines per-chunk
//! results in chunk order. Floating-point reductions therefore round
//! identically on 1 and N threads, and kernels that write disjoint
//! output slices are bit-identical by construction — the property the
//! workspace's `parallel_determinism` suite asserts for every backend.
//!
//! # Divergences from upstream rayon
//!
//! - [`ThreadPool::install`] runs the closure on the *calling* thread
//!   (upstream moves it to a worker); parallel ops inside still
//!   dispatch to the installed pool, so engine semantics are identical.
//! - No work stealing: one job is in flight per pool at a time, and
//!   nested parallel ops (including nested [`join`]) run inline on the
//!   thread that issued them — deadlock-free by construction.
//! - A 1-thread pool executes inline on the caller instead of paying a
//!   cross-thread handoff; the chunk decomposition is unchanged.

mod iter;
mod pool;
mod sort;

/// The parallel-iterator traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

pub use iter::{FromParallelIterator, IndexedParallelIterator, ParallelIterator};

/// Number of threads governing parallel ops started on the current
/// thread: the worker's own pool on pool threads, the installed pool
/// inside [`ThreadPool::install`], otherwise the global default.
pub fn current_num_threads() -> usize {
    pool::current_threads()
}

/// Runs `a` and `b`, potentially in parallel (`b` is offloaded to the
/// ambient pool while the calling thread runs `a`). On worker threads
/// and inside an already-running job both run inline — nested joins
/// never deadlock.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(a, b)
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never
/// constructed by the shim; kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in the shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A pool of persistent worker threads. Parallel ops started inside
/// [`ThreadPool::install`] run on it; dropping the pool joins the
/// workers.
pub struct ThreadPool {
    handle: pool::PoolHandle,
}

impl ThreadPool {
    /// Runs `op` with this pool installed as the ambient pool for the
    /// duration (on the calling thread — see the module docs for the
    /// divergence from upstream). The `Send` bounds match the real
    /// rayon signature so code written against the shim compiles
    /// unchanged against the real crate.
    pub fn install<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        let _guard = pool::InstallGuard::push(self.handle.shared());
        op()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.handle.num_workers()
    }

    /// Shim extension: worker threads this pool spawned (equals the
    /// configured thread count). Used by the workspace's pool
    /// instrumentation regression tests.
    pub fn num_workers(&self) -> usize {
        self.handle.num_workers()
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` (the default) means available
    /// parallelism, honoring `RAYON_NUM_THREADS`.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Spawns the workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.threads == 0 {
            pool::default_threads()
        } else {
            self.threads
        };
        Ok(ThreadPool {
            handle: pool::PoolHandle::new(threads),
        })
    }
}

/// Monotonic process-wide instrumentation counters. These only ever
/// increase, so tests can assert deltas without coordinating with
/// concurrently running tests.
pub mod diagnostics {
    use std::sync::atomic::Ordering;

    /// Worker threads spawned since process start.
    pub fn workers_spawned() -> usize {
        crate::pool::WORKERS_SPAWNED.load(Ordering::Relaxed)
    }

    /// Worker threads that have exited (pools joined on drop).
    pub fn workers_exited() -> usize {
        crate::pool::WORKERS_EXITED.load(Ordering::Relaxed)
    }

    /// Jobs dispatched to worker pools (inline runs are not counted).
    pub fn jobs_dispatched() -> usize {
        crate::pool::JOBS_DISPATCHED.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn pool(n: usize) -> super::ThreadPool {
        super::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    }

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().sum();
        assert_eq!(s, 10);
        let doubled: Vec<i32> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn ranges_and_slices_of_mut_slices_work() {
        let mut data = vec![0u32; 6];
        let (a, b) = data.split_at_mut(3);
        vec![a, b]
            .into_par_iter()
            .enumerate()
            .for_each(|(i, s)| s.fill(i as u32));
        assert_eq!(data, vec![0, 0, 0, 1, 1, 1]);
        let total: u32 = (0u32..5).into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn pool_installs_and_runs_work() {
        let pool = pool(4);
        assert_eq!(pool.install(|| 21 * 2), 42);
        // A large enough op inside install actually crosses the pool.
        let before = super::diagnostics::jobs_dispatched();
        let n = 1 << 16;
        let mut out = vec![0u64; n];
        pool.install(|| {
            out.par_iter_mut()
                .enumerate()
                .for_each(|(i, slot)| *slot = i as u64 * 3);
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
        assert!(super::diagnostics::jobs_dispatched() > before);
    }

    #[test]
    fn par_sort_sorts() {
        let mut v = vec![3u8, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
        // Large enough to exercise the parallel merge path.
        let mut big: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b9) % 7919)
            .collect();
        let mut want = big.clone();
        want.sort_unstable();
        big.par_sort_unstable();
        assert_eq!(big, want);
        let mut stable: Vec<(u32, u32)> = (0..50_000u32).map(|i| (i % 13, i)).collect();
        let mut want2 = stable.clone();
        want2.sort();
        stable.par_sort();
        assert_eq!(stable, want2);
    }

    #[test]
    fn zip_filter_map_sum_matches_serial() {
        let a: Vec<f32> = (0..10_000).map(|i| (i % 97) as f32).collect();
        let d: Vec<u64> = (0..10_000).map(|i| (i % 3) as u64).collect();
        let par: f64 = a
            .par_iter()
            .zip(&d)
            .filter(|(_, &deg)| deg == 0)
            .map(|(&x, _)| f64::from(x))
            .sum();
        let serial: f64 = a
            .iter()
            .zip(&d)
            .filter(|(_, &deg)| deg == 0)
            .map(|(&x, _)| f64::from(x))
            .sum();
        // Identical chunking on every path keeps this bit-exact.
        assert_eq!(par.to_bits(), serial.to_bits());
    }

    #[test]
    fn reductions_bit_identical_across_thread_counts() {
        // Adversarial float magnitudes: any change in association order
        // would change the rounding, so bit equality proves the chunk
        // decomposition is thread-count independent.
        let v: Vec<f64> = (0..100_000)
            .map(|i| ((i * 2654435761u64 % 1000) as f64).powi((i % 7) as i32 - 3))
            .collect();
        let sums: Vec<u64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| pool(t).install(|| v.par_iter().sum::<f64>().to_bits()))
            .collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]), "sums {sums:?}");
    }

    #[test]
    fn panic_in_one_task_propagates_and_pool_survives() {
        let pool = pool(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                (0u32..10_000).into_par_iter().for_each(|i| {
                    assert!(i != 4321, "boom at {i}");
                });
            });
        }));
        let msg = r.expect_err("panic must propagate");
        let text = msg.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("boom at 4321"), "payload: {text}");
        // The pool keeps serving jobs after the poisoned one.
        let total: u64 = pool.install(|| (0u64..1000).into_par_iter().sum());
        assert_eq!(total, 499_500);
    }

    #[test]
    fn zero_threads_falls_back_to_available_parallelism() {
        let pool = pool(0);
        assert!(pool.num_workers() >= 1);
        assert_eq!(pool.num_workers(), super::pool::default_threads());
    }

    #[test]
    fn nested_join_does_not_deadlock() {
        let pool = pool(2);
        let r = pool.install(|| {
            super::join(
                || {
                    let (a, b) = super::join(|| 1, || 2);
                    a + b
                },
                || {
                    let (c, d) = super::join(|| 10, || 20);
                    c + d
                },
            )
        });
        assert_eq!(r, (3, 30));
        // join nested inside a parallel op (worker context) is inline.
        let s: u32 = pool.install(|| {
            (0u32..64)
                .into_par_iter()
                .map(|i| super::join(|| i, || i).0)
                .sum()
        });
        assert_eq!(s, 2016);
    }

    #[test]
    fn join_panic_propagates() {
        let pool = pool(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| super::join(|| 1, || panic!("join-b dies")))
        }));
        assert!(r.is_err());
        // And the caller side too.
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| super::join(|| panic!("join-a dies"), || 2))
        }));
        assert!(r.is_err());
        assert_eq!(pool.install(|| super::join(|| 5, || 6)), (5, 6));
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let spawned_before = super::diagnostics::workers_spawned();
        let exited_before = super::diagnostics::workers_exited();
        let p = pool(3);
        assert!(super::diagnostics::workers_spawned() >= spawned_before + 3);
        // The pool is usable before being dropped.
        assert_eq!(
            p.install(|| (0u64..10_000).into_par_iter().sum::<u64>()),
            49_995_000
        );
        drop(p);
        assert!(super::diagnostics::workers_exited() >= exited_before + 3);
    }

    #[test]
    fn collect_preserves_order_with_many_chunks() {
        let n = 123_457usize;
        let v: Vec<usize> = (0..n).into_par_iter().map(|i| i * 7).collect();
        assert_eq!(v.len(), n);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 7));
    }
}
