// pcpm-lint: allow-file(unsafe-budget, reason = "vendored rayon stand-in: the Job lifetime-erasure protocol (transmute to 'static plus Send/Sync impls) is the pool's documented core and is audited in-file, not site-by-site")
//! The work-sharing execution core behind the rayon shim.
//!
//! One [`PoolShared`] owns a single *job slot*: at most one parallel
//! operation is in flight per pool at a time (submitters queue on
//! [`PoolShared::submit`]). A job decomposes `0..len` into chunks whose
//! boundaries are a pure function of `len` — never of the worker count —
//! and persistent worker threads claim chunks with one `fetch_add` each.
//! That fixed decomposition is what makes every reduction in the
//! workspace bit-identical across thread counts: chunk *assignment* is
//! scheduler-dependent, chunk *boundaries* and the order partial results
//! are combined in are not.
//!
//! Panic protocol: a panic inside a chunk is caught on the worker, the
//! job is poisoned (remaining chunks are skipped), and the payload is
//! re-thrown on the submitting thread once every claimed chunk has
//! finished. The pool itself survives and keeps serving jobs.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on the number of chunks a job is split into. 64 keeps
/// claim overhead negligible while giving an 8-thread pool ~8 chunks of
/// slack for load balancing skewed partition work.
const MAX_CHUNKS: usize = 64;

/// Cap on the *default* (env-derived) pool size; explicit
/// `num_threads(n)` requests are never capped.
const MAX_DEFAULT_THREADS: usize = 16;

/// Chunk length for a job over `len` items — a pure function of `len`,
/// which is the determinism contract every reduction relies on.
pub(crate) fn chunk_size_for(len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(1)
}

// --- instrumentation (monotonic, global) -----------------------------------

/// Worker threads ever spawned, process-wide.
pub(crate) static WORKERS_SPAWNED: AtomicUsize = AtomicUsize::new(0);
/// Worker threads that have exited (pool drops join their workers).
pub(crate) static WORKERS_EXITED: AtomicUsize = AtomicUsize::new(0);
/// Jobs handed to a worker pool (inline executions are not counted).
pub(crate) static JOBS_DISPATCHED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stack of pools installed via `ThreadPool::install` on this thread.
    static INSTALLED: RefCell<Vec<Arc<PoolShared>>> = const { RefCell::new(Vec::new()) };
    /// Non-zero on pool worker threads: the owning pool's thread count.
    static WORKER_THREADS: Cell<usize> = const { Cell::new(0) };
    /// True while this thread is blocked on a job it submitted; nested
    /// parallel ops then run inline instead of deadlocking on the
    /// submit lock.
    static JOB_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Default pool size: `RAYON_NUM_THREADS` when set and positive,
/// otherwise the machine's available parallelism (capped).
pub(crate) fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_THREADS)
}

/// Thread count governing parallel ops started on this thread.
pub(crate) fn current_threads() -> usize {
    let w = WORKER_THREADS.with(Cell::get);
    if w != 0 {
        return w;
    }
    if let Some(t) = INSTALLED.with(|p| p.borrow().last().map(|s| s.threads)) {
        return t;
    }
    default_threads()
}

// --- job -------------------------------------------------------------------

struct Job {
    len: usize,
    chunk_size: usize,
    n_chunks: usize,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Chunks fully processed (run, skipped-poisoned, or panicked).
    finished: AtomicUsize,
    /// Set on first panic: later claims skip their chunk body.
    poisoned: AtomicBool,
    /// First panic payload, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Lifetime-erased reference to the submitter's chunk closure; the
    /// submitter blocks until `finished == n_chunks`, so the borrow
    /// outlives every dereference.
    run: &'static (dyn Fn(Range<usize>) + Sync),
}

// SAFETY: `run` is only dereferenced for successfully claimed chunk
// indices, and the submitter keeps the closure alive until `finished ==
// n_chunks`; all other fields are Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and processes chunks until none remain. Called by workers
    /// (and never by the submitter, which sleeps on `done_cv` so the
    /// pool's thread count is exactly the configured compute width).
    fn participate(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_chunks {
                return;
            }
            if !self.poisoned.load(Ordering::Relaxed) {
                let lo = i * self.chunk_size;
                let hi = self.len.min(lo + self.chunk_size);
                let run = self.run;
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(lo..hi))) {
                    self.poisoned.store(true, Ordering::Relaxed);
                    let mut slot = self.panic.lock().unwrap();
                    slot.get_or_insert(payload);
                }
            }
            if self.finished.fetch_add(1, Ordering::AcqRel) + 1 == self.n_chunks {
                let mut d = self.done.lock().unwrap();
                *d = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn wait_done(&self) {
        let mut d = self.done.lock().unwrap();
        while !*d {
            d = self.done_cv.wait(d).unwrap();
        }
    }
}

// --- pool ------------------------------------------------------------------

struct JobSlot {
    job: Option<Arc<Job>>,
    generation: u64,
}

pub(crate) struct PoolShared {
    pub(crate) threads: usize,
    slot: Mutex<JobSlot>,
    work_cv: Condvar,
    /// Serializes submitters: one job in flight per pool.
    submit: Mutex<()>,
    shutdown: AtomicBool,
}

/// RAII: marks a submitted job in flight on this thread (nested parallel
/// ops go inline), cleared even if the job panics.
struct JobActiveGuard {
    prev: bool,
}

impl JobActiveGuard {
    fn arm() -> Self {
        let prev = JOB_ACTIVE.with(Cell::get);
        JOB_ACTIVE.with(|c| c.set(true));
        Self { prev }
    }
}

impl Drop for JobActiveGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        JOB_ACTIVE.with(|c| c.set(prev));
    }
}

impl PoolShared {
    fn publish(
        &self,
        len: usize,
        chunk_size: usize,
        n_chunks: usize,
        f: &(dyn Fn(Range<usize>) + Sync),
    ) -> Arc<Job> {
        // SAFETY: lifetime erasure only — the submitter stays blocked in
        // `execute`/`join` until every claimed chunk has finished, so the
        // closure is alive for every dereference of `run`.
        let run: &'static (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Arc::new(Job {
            len,
            chunk_size,
            n_chunks,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            run,
        });
        {
            let mut slot = self.slot.lock().unwrap();
            slot.job = Some(Arc::clone(&job));
            slot.generation += 1;
        }
        self.work_cv.notify_all();
        JOBS_DISPATCHED.fetch_add(1, Ordering::Relaxed);
        job
    }

    fn clear_slot(&self) {
        let mut slot = self.slot.lock().unwrap();
        slot.job = None;
    }

    /// Runs one chunked job to completion on the workers; the calling
    /// thread sleeps until every claimed chunk has finished, then
    /// re-throws the first chunk panic, if any.
    fn execute(
        &self,
        len: usize,
        chunk_size: usize,
        n_chunks: usize,
        f: &(dyn Fn(Range<usize>) + Sync),
    ) {
        let payload = {
            let _submit = self.submit.lock().unwrap();
            let _active = JobActiveGuard::arm();
            let job = self.publish(len, chunk_size, n_chunks, f);
            job.wait_done();
            self.clear_slot();
            let payload = job.panic.lock().unwrap().take();
            payload
        };
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }

    /// `rayon::join`: `b` runs as a one-shot job on the workers while the
    /// calling thread runs `a`. Panic in `a` wins (after `b` completes);
    /// otherwise a panic in `b` is re-thrown.
    pub(crate) fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RB: Send,
    {
        let b_result: Mutex<Option<RB>> = Mutex::new(None);
        let b_cell = Mutex::new(Some(b));
        let run = |_: Range<usize>| {
            let f = b_cell.lock().unwrap().take().expect("join task runs once");
            *b_result.lock().unwrap() = Some(f());
        };
        let (ra, b_panic) = {
            let _submit = self.submit.lock().unwrap();
            let _active = JobActiveGuard::arm();
            let job = self.publish(1, 1, 1, &run);
            let ra = catch_unwind(AssertUnwindSafe(a));
            job.wait_done();
            self.clear_slot();
            let b_panic = job.panic.lock().unwrap().take();
            (ra, b_panic)
        };
        match ra {
            Err(p) => resume_unwind(p),
            Ok(ra) => {
                if let Some(p) = b_panic {
                    resume_unwind(p);
                }
                let rb = b_result.into_inner().unwrap().expect("join task completed");
                (ra, rb)
            }
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    WORKER_THREADS.with(|c| c.set(shared.threads));
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    WORKERS_EXITED.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                if slot.generation != last_gen {
                    last_gen = slot.generation;
                    if let Some(job) = slot.job.clone() {
                        break job;
                    }
                    // Job already finished and was cleared; keep waiting.
                }
                slot = shared.work_cv.wait(slot).unwrap();
            }
        };
        job.participate();
    }
}

/// A pool plus its worker join handles; dropping shuts the workers down
/// and joins them.
pub(crate) struct PoolHandle {
    pub(crate) shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PoolHandle {
    pub(crate) fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            threads,
            slot: Mutex::new(JobSlot {
                job: None,
                generation: 0,
            }),
            work_cv: Condvar::new(),
            submit: Mutex::new(()),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                // pcpm-lint: allow(determinism, reason = "this is the deterministic pool itself: the one sanctioned spawner every kernel must route through")
                let handle = std::thread::Builder::new()
                    .name(format!("pcpm-rayon-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker");
                // Counted here (not in the worker) so the instrumentation
                // is visible as soon as pool construction returns.
                WORKERS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                handle
            })
            .collect();
        Self { shared, workers }
    }

    pub(crate) fn shared(&self) -> Arc<PoolShared> {
        Arc::clone(&self.shared)
    }

    pub(crate) fn num_workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Take the slot lock so sleeping workers can't miss the wakeup.
        drop(self.shared.slot.lock().unwrap());
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The process-global pool, built lazily on first use (never dropped;
/// its workers die with the process).
fn global() -> &'static PoolHandle {
    static GLOBAL: OnceLock<PoolHandle> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolHandle::new(default_threads()))
}

/// RAII for `ThreadPool::install`: pushes the pool onto this thread's
/// stack so parallel ops dispatch to it, and pops on drop (panic-safe).
pub(crate) struct InstallGuard;

impl InstallGuard {
    pub(crate) fn push(shared: Arc<PoolShared>) -> Self {
        INSTALLED.with(|p| p.borrow_mut().push(shared));
        InstallGuard
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|p| {
            p.borrow_mut().pop();
        });
    }
}

// --- dispatch --------------------------------------------------------------

enum Exec {
    /// Run chunks on the calling thread, in chunk order.
    Inline,
    /// Hand the job to this pool's workers.
    Pool(Arc<PoolShared>),
}

/// Where a parallel op started on this thread should run. Worker threads
/// and threads blocked on a job they submitted run inline (that is what
/// makes nested ops — including nested `join` — deadlock-free); a
/// 1-thread pool is equivalent to inline execution and skips the
/// cross-thread handoff.
fn resolve() -> Exec {
    if WORKER_THREADS.with(Cell::get) != 0 || JOB_ACTIVE.with(Cell::get) {
        return Exec::Inline;
    }
    let shared = INSTALLED
        .with(|p| p.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(&global().shared));
    if shared.threads <= 1 {
        Exec::Inline
    } else {
        Exec::Pool(shared)
    }
}

/// Runs `f` over the fixed chunk decomposition of `0..len`. The inline
/// and pooled paths use identical chunk boundaries and in-chunk order,
/// so results are bit-identical for any thread count.
pub(crate) fn run_job(len: usize, f: &(dyn Fn(Range<usize>) + Sync)) {
    if len == 0 {
        return;
    }
    let size = chunk_size_for(len);
    let n = len.div_ceil(size);
    if n == 1 {
        // Single chunk: no decomposition to distribute (and no reason to
        // force the lazy global pool into existence).
        f(0..len);
        return;
    }
    match resolve() {
        Exec::Inline => {
            for i in 0..n {
                f(i * size..len.min((i + 1) * size));
            }
        }
        Exec::Pool(shared) => shared.execute(len, size, n, f),
    }
}

/// Like [`run_job`] but collects one result per chunk, returned in chunk
/// order — the deterministic combination step behind `sum` / `collect`.
pub(crate) fn run_job_collect<R: Send>(len: usize, f: impl Fn(Range<usize>) -> R + Sync) -> Vec<R> {
    if len == 0 {
        return Vec::new();
    }
    let size = chunk_size_for(len);
    let n = len.div_ceil(size);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run_job(len, &|range: Range<usize>| {
        let idx = range.start / size;
        let value = f(range);
        *slots[idx].lock().unwrap() = Some(value);
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("chunk completed"))
        .collect()
}

/// `rayon::join`, dispatched like any other parallel op.
pub(crate) fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    match resolve() {
        Exec::Inline => (a(), b()),
        Exec::Pool(shared) => shared.join(a, b),
    }
}
