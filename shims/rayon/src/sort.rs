//! Parallel merge sort behind `par_sort` / `par_sort_unstable`.
//!
//! Shape: split the slice into a fixed number of equal runs (a pure
//! function of `len`, so the result is deterministic for any thread
//! count), sort the runs in parallel, then merge adjacent runs in
//! parallel rounds, ping-ponging between the slice and one scratch
//! buffer. Merges take from the left run on ties, which keeps `par_sort`
//! stable.
//!
//! Elements move between the slice and the scratch buffer via raw
//! copies. A comparator panic mid-merge would leave values duplicated
//! across the two buffers, so the merge phase runs under an abort guard;
//! `Ord` on the workspace's POD keys never panics, making this a purely
//! theoretical backstop.

use crate::pool;
use std::cmp::Ordering;
use std::mem::MaybeUninit;
use std::ops::Range;

/// Below this length a sequential sort wins outright.
const SEQ_CUTOFF: usize = 1 << 13;

/// Number of initial runs (power of two so merge rounds pair cleanly).
const RUNS: usize = 16;

/// Raw pointer that may cross threads; disjoint-range use only.
struct SyncPtr<T>(*mut T);

// SAFETY: SyncPtr is only ever constructed over the slice being sorted
// (or its scratch twin) and only dereferenced through ranges proved
// disjoint per worker: run subranges in phase 1, pair output ranges in
// phase 2 (see `pair_bounds`). No two threads touch the same element
// between synchronization points, and `T: Send` makes moving the
// pointees across those threads sound. `pcpm-lint` pins this file's
// unsafe count in crates/lint/unsafe-allowlist.txt.
unsafe impl<T: Send> Send for SyncPtr<T> {}
// SAFETY: sharing &SyncPtr only shares the address; all dereferences go
// through the disjoint ranges argued above.
unsafe impl<T: Send> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Accessor rather than field access so edition-2021 closures
    /// capture the (Sync) wrapper, not the raw pointer field.
    fn get(self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SyncPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SyncPtr<T> {}

/// Aborts the process if dropped while armed (comparator panicked while
/// elements were duplicated across buffers).
struct AbortOnUnwind;

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        eprintln!("rayon shim: comparator panicked during parallel merge; aborting");
        std::process::abort();
    }
}

pub(crate) fn par_merge_sort<T: Ord + Send>(v: &mut [T], stable: bool) {
    let len = v.len();
    if len <= SEQ_CUTOFF {
        if stable {
            v.sort();
        } else {
            v.sort_unstable();
        }
        return;
    }
    let run_w = len.div_ceil(RUNS);
    let n_runs = len.div_ceil(run_w);
    let base = SyncPtr(v.as_mut_ptr());

    // Phase 1: sort the runs in parallel (disjoint subslices).
    pool::run_job(n_runs, &|range: Range<usize>| {
        for r in range {
            let lo = r * run_w;
            let hi = len.min(lo + run_w);
            debug_assert!(lo < hi && hi <= len, "run {r} out of bounds");
            // SAFETY: run r covers [r*run_w, min(len, (r+1)*run_w)) —
            // consecutive half-open intervals, disjoint by construction
            // — and `base` is valid for all `len` elements.
            let run = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            if stable {
                run.sort();
            } else {
                run.sort_unstable();
            }
        }
    });

    // Phase 2: merge adjacent runs in rounds, slice <-> scratch.
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit needs no initialization.
    unsafe { scratch.set_len(len) };
    let scratch_ptr = SyncPtr(scratch.as_mut_ptr() as *mut T);
    let guard = AbortOnUnwind;
    let mut width = run_w;
    let mut in_slice = true;
    while width < len {
        let (src, dst) = if in_slice {
            (base, scratch_ptr)
        } else {
            (scratch_ptr, base)
        };
        let pairs = len.div_ceil(2 * width);
        pool::run_job(pairs, &|range: Range<usize>| {
            for p in range {
                // SAFETY: pair p reads src and writes dst only inside
                // `pair_bounds(len, p, width)` — consecutive half-open
                // intervals aligned to `2*width`, so output ranges are
                // disjoint across pairs (asserted in `pair_bounds`) —
                // and every element is read once from src and written
                // once to dst.
                unsafe { merge_pair(src.get(), dst.get(), len, p, width) };
            }
        });
        width *= 2;
        in_slice = !in_slice;
    }
    if !in_slice {
        // SAFETY: scratch holds all `len` sorted elements; move back.
        unsafe { std::ptr::copy_nonoverlapping(scratch_ptr.get(), base.get(), len) };
    }
    std::mem::forget(guard);
    // `scratch` drops as MaybeUninit: frees storage, drops no elements.
}

/// The half-open element ranges merge pair `pair` touches:
/// `[lo, mid)` and `[mid, hi)` read from `src`, `[lo, hi)` written to
/// `dst`. Pure arithmetic on `(len, pair, width)` — pair ranges tile
/// `0..len` in consecutive `2*width` strides, which is the disjointness
/// the merge phase's `unsafe` relies on; the debug assertions pin the
/// tiling down so a stride-math regression fails loudly under
/// `cargo test` instead of corrupting a sort.
fn pair_bounds(len: usize, pair: usize, width: usize) -> (usize, usize, usize) {
    let lo = pair * 2 * width;
    let mid = len.min(lo + width);
    let hi = len.min(lo + 2 * width);
    debug_assert!(
        lo <= mid && mid <= hi && hi <= len,
        "pair {pair} bounds out of order"
    );
    debug_assert!(lo < len, "pair {pair} starts past the slice");
    debug_assert_eq!(lo % (2 * width), 0, "pair {pair} not aligned to its stride");
    (lo, mid, hi)
}

/// Merges sorted `src[lo..mid]` and `src[mid..hi]` into `dst[lo..hi]`,
/// taking from the left run on ties (stability).
///
/// # Safety
///
/// `src` and `dst` must each be valid for `len` elements, the pair
/// ranges across calls must be disjoint, and each element must be
/// treated as moved from `src` afterwards.
unsafe fn merge_pair<T: Ord>(src: *const T, dst: *mut T, len: usize, pair: usize, width: usize) {
    let (lo, mid, hi) = pair_bounds(len, pair, width);
    let (mut a, mut b, mut out) = (lo, mid, lo);
    while a < mid && b < hi {
        let take_left = match (*src.add(a)).cmp(&*src.add(b)) {
            Ordering::Less | Ordering::Equal => true,
            Ordering::Greater => false,
        };
        let from = if take_left { &mut a } else { &mut b };
        std::ptr::copy_nonoverlapping(src.add(*from), dst.add(out), 1);
        *from += 1;
        out += 1;
    }
    if a < mid {
        std::ptr::copy_nonoverlapping(src.add(a), dst.add(out), mid - a);
        out += mid - a;
    }
    if b < hi {
        std::ptr::copy_nonoverlapping(src.add(b), dst.add(out), hi - b);
        out += hi - b;
    }
    debug_assert_eq!(out, hi);
}
