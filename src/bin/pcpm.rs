//! `pcpm` — command-line graph analytics on the partition-centric engine.
//!
//! ```text
//! pcpm stats       <graph>                 structural summary
//! pcpm pagerank    <graph> [--top K]       PageRank (weighted when .mtx has values)
//! pcpm components  <graph>                 connected components
//! pcpm bfs         <graph> --source V      BFS levels
//! pcpm sssp        <graph> --source V      shortest paths (needs weighted .mtx)
//! pcpm convert     <graph> --out FILE      any input -> binary format
//! pcpm gen         <out>   --kind rmat|er  seeded synthetic graph -> binary file
//! pcpm gen-updates <graph> --out FILE      seeded edge-update stream for `stream`
//! pcpm stream      <graph> --updates FILE  replay updates: incremental bin repair
//!                                          + delta-PageRank vs full rebuild
//! pcpm build-cache <graph> --out FILE      build the engine once, snapshot it
//!                                          (PNG + bins) for --cache serving
//! pcpm ppr         <graph> --seeds 1,2,3   personalized PageRank from a seed set
//!                          --sources 1,2,3 one single-seed PPR query per source,
//!                                          batched through one engine pass per
//!                                          iteration (bit-identical output, the
//!                                          destID bins scanned once per pass)
//! pcpm serve       <snap> [<snap>...]      long-lived query server over
//!                                          build-cache snapshots (TCP)
//! pcpm query       <addr> --op OP          query a running `pcpm serve`
//!
//! common flags: --binary (pcpm binary input) | --mtx (Matrix Market input)
//!               --iters N --damping D --tolerance T --partition-bytes B
//!               --threads N (engine-owned worker pool; default: ambient pool)
//!               --top K (print only the K best rows)
//!               --backend pcpm|pull|push|edge-centric (dataplane to run on)
//!               --format wide|compact|delta (PCPM bin encoding; compact
//!               needs --partition-bytes <= 131072, delta is unrestricted)
//!               --kernel auto|scalar|unrolled (PCPM gather/decode kernel;
//!               auto picks the predicted-fastest variant at build time)
//!               --seed S (every generator path is reproducible run-to-run)
//!               --trace-out FILE (record telemetry spans, write
//!               Chrome-trace JSON openable in chrome://tracing/Perfetto)
//!
//! gen flags:         --kind rmat|er --scale S --edge-factor F (rmat)
//!                    --nodes N --edges M (er)
//! gen-updates flags: --batches B --batch-size K --delete-frac F
//!                    --update-locality P (restrict each batch to P source
//!                    partitions of --partition-bytes/4 nodes)
//!                    --update-format text|binary (binary = checksummed
//!                    compact frames, read back transparently everywhere)
//! serve flags:       --listen ADDR (default 127.0.0.1:7450)
//!                    --workers N (query threads, default 4) --threads N
//!                    --metrics-addr ADDR (second listener answering any
//!                    HTTP GET with Prometheus text exposition)
//! query flags:       --op health|stats|pagerank|ppr|bfs|sssp|update|shutdown
//!                    --engine I (server engine index, default 0)
//!                    --seeds 1,2,3 (ppr) --source V (bfs/sssp)
//!                    --timeout SECS (bound connect and every read/write;
//!                    without it a dead server can hang the client forever)
//!                    --updates FILE (update: replayed batch by batch)
//!                    plus --iters/--damping/--tolerance/--top as offline
//! stream flags:      --updates FILE --compaction-threshold F --verify
//!                    (check incremental ranks against a cold run per batch)
//! cache flags:       --cache FILE on pagerank/stream: load the prepared
//!                    engine from a snapshot built by `build-cache`
//!                    (skipping PNG/bin construction entirely), or build
//!                    cold and save it there when the file is absent.
//!                    `stream --cache` additionally writes the
//!                    post-stream state to FILE.final.pcpmc so the next
//!                    run resumes after compaction.
//! ```
//!
//! Text inputs are SNAP-style whitespace edge lists with `#` comments.

use pcpm::core::algebra::PlusF32;
use pcpm::core::pagerank::pagerank_with_unified_engine;
use pcpm::prelude::*;
use pcpm::serve::{install_termination_handler, ServeError};
use pcpm::stream::{write_updates, Locality};
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    command: String,
    path: String,
    binary: bool,
    mtx: bool,
    iters: Option<usize>,
    damping: f64,
    tolerance: Option<f64>,
    partition_bytes: usize,
    threads: Option<usize>,
    top: usize,
    source: u32,
    out: Option<String>,
    backend: BackendKind,
    format: BinFormatKind,
    kernel: KernelKind,
    seed: u64,
    kind: String,
    scale: u32,
    edge_factor: u32,
    nodes: u32,
    edges: u64,
    updates: Option<String>,
    batches: usize,
    batch_size: usize,
    delete_frac: f64,
    update_locality: Option<u32>,
    compaction_threshold: f64,
    verify: bool,
    cache: Option<String>,
    update_format: String,
    listen: String,
    workers: usize,
    metrics_addr: Option<String>,
    trace_out: Option<String>,
    op: String,
    engine: u16,
    seeds: Vec<u32>,
    sources: Vec<u32>,
    timeout: Option<f64>,
    json: bool,
    extra: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    let mut opts = Options {
        command,
        path: String::new(),
        binary: false,
        mtx: false,
        iters: None,
        damping: 0.85,
        tolerance: None,
        partition_bytes: 256 * 1024,
        threads: None,
        top: 10,
        source: 0,
        out: None,
        backend: BackendKind::Pcpm,
        format: BinFormatKind::Wide,
        kernel: KernelKind::Auto,
        seed: 42,
        kind: "rmat".to_string(),
        scale: 10,
        edge_factor: 8,
        nodes: 1024,
        edges: 8192,
        updates: None,
        batches: 10,
        batch_size: 100,
        delete_frac: 0.3,
        update_locality: None,
        compaction_threshold: pcpm::stream::DEFAULT_COMPACTION_THRESHOLD,
        verify: false,
        cache: None,
        update_format: "text".to_string(),
        listen: "127.0.0.1:7450".to_string(),
        workers: 4,
        metrics_addr: None,
        trace_out: None,
        op: "health".to_string(),
        engine: 0,
        seeds: Vec::new(),
        sources: Vec::new(),
        timeout: None,
        json: false,
        extra: Vec::new(),
    };
    let mut positional = Vec::new();
    let mut rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        let take_value = |rest: &mut Vec<String>, i: &mut usize| -> Result<String, String> {
            *i += 1;
            rest.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag {} needs a value", rest[*i - 1]))
        };
        match rest[i].as_str() {
            "--binary" => opts.binary = true,
            "--mtx" => opts.mtx = true,
            "--iters" => {
                opts.iters = Some(
                    take_value(&mut rest, &mut i)?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--damping" => {
                opts.damping = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--tolerance" => {
                opts.tolerance = Some(
                    take_value(&mut rest, &mut i)?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--partition-bytes" => {
                opts.partition_bytes = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--threads" => {
                opts.threads = Some(
                    take_value(&mut rest, &mut i)?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                );
            }
            "--top" => {
                opts.top = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--source" => {
                opts.source = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--out" => opts.out = Some(take_value(&mut rest, &mut i)?),
            "--seed" => {
                opts.seed = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--kind" => opts.kind = take_value(&mut rest, &mut i)?,
            "--scale" => {
                opts.scale = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--edge-factor" => {
                opts.edge_factor = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--nodes" => {
                opts.nodes = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--edges" => {
                opts.edges = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--updates" => opts.updates = Some(take_value(&mut rest, &mut i)?),
            "--batches" => {
                opts.batches = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--batch-size" => {
                opts.batch_size = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--delete-frac" => {
                opts.delete_frac = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--update-locality" => {
                opts.update_locality = Some(
                    take_value(&mut rest, &mut i)?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--compaction-threshold" => {
                opts.compaction_threshold = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--verify" => opts.verify = true,
            "--cache" => opts.cache = Some(take_value(&mut rest, &mut i)?),
            "--update-format" => {
                let v = take_value(&mut rest, &mut i)?;
                if v != "text" && v != "binary" {
                    return Err(format!(
                        "unknown update format '{v}' (expected text|binary)"
                    ));
                }
                opts.update_format = v;
            }
            "--listen" => opts.listen = take_value(&mut rest, &mut i)?,
            "--metrics-addr" => opts.metrics_addr = Some(take_value(&mut rest, &mut i)?),
            "--trace-out" => opts.trace_out = Some(take_value(&mut rest, &mut i)?),
            "--workers" => {
                opts.workers = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("bad --workers: {e}"))?
            }
            "--op" => opts.op = take_value(&mut rest, &mut i)?,
            "--engine" => {
                opts.engine = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("bad --engine: {e}"))?
            }
            "--seeds" => {
                opts.seeds = take_value(&mut rest, &mut i)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|e| format!("bad seed '{s}': {e}")))
                    .collect::<Result<Vec<u32>, String>>()?;
            }
            "--sources" => {
                opts.sources = take_value(&mut rest, &mut i)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|e| format!("bad source '{s}': {e}"))
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
            }
            "--timeout" => {
                let secs: f64 = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("bad --timeout: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--timeout needs a positive number of seconds".into());
                }
                opts.timeout = Some(secs);
            }
            "--backend" => {
                opts.backend = match take_value(&mut rest, &mut i)?.as_str() {
                    "pcpm" => BackendKind::Pcpm,
                    "pull" => BackendKind::Pull,
                    "push" => BackendKind::Push,
                    "edge-centric" => BackendKind::EdgeCentric,
                    other => {
                        return Err(format!(
                            "unknown backend '{other}' (expected pcpm|pull|push|edge-centric)"
                        ))
                    }
                }
            }
            "--format" => {
                let v = take_value(&mut rest, &mut i)?;
                opts.format = v
                    .parse()
                    .map_err(|_| format!("unknown format '{v}' (expected wide|compact|delta)"))?;
            }
            "--kernel" => {
                let v = take_value(&mut rest, &mut i)?;
                opts.kernel = v.parse()?;
            }
            "--json" => opts.json = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            pos => positional.push(pos.to_string()),
        }
        i += 1;
    }
    opts.path = match positional.first() {
        Some(p) => p.clone(),
        // `lint` operates on the workspace itself; it takes no input
        // path.
        None if opts.command == "lint" => String::new(),
        None => return Err("missing graph path".into()),
    };
    opts.extra = if positional.is_empty() {
        Vec::new()
    } else {
        positional[1..].to_vec()
    };
    Ok(opts)
}

fn load(opts: &Options) -> Result<(Csr, Option<EdgeWeights>), String> {
    if opts.binary {
        let g = pcpm::graph::io::load_binary(&opts.path).map_err(|e| e.to_string())?;
        Ok((g, None))
    } else if opts.mtx {
        let file = std::fs::File::open(&opts.path).map_err(|e| e.to_string())?;
        pcpm::graph::mm::read_matrix_market(file).map_err(|e| e.to_string())
    } else {
        let file = std::fs::File::open(&opts.path).map_err(|e| e.to_string())?;
        let g = pcpm::graph::io::read_edge_list(file, None).map_err(|e| e.to_string())?;
        Ok((g, None))
    }
}

fn config(opts: &Options) -> PcpmConfig {
    let mut cfg = PcpmConfig::default()
        .with_partition_bytes(opts.partition_bytes)
        .with_iterations(opts.iters.unwrap_or(20));
    cfg.damping = opts.damping;
    cfg.tolerance = opts.tolerance;
    cfg.threads = opts.threads;
    cfg.bin_format = opts.format;
    cfg.kernel = opts.kernel;
    cfg
}

/// `pcpm gen`: seeded synthetic graph written in the binary format.
/// `pcpm lint [--json]`: run the workspace static-analysis pass
/// in-process (the same engine as `cargo run -p pcpm-lint`). Any
/// finding exits non-zero through the normal error path.
fn run_lint(opts: &Options) -> Result<(), String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = pcpm::lint::find_workspace_root(&cwd)
        .ok_or("lint: no [workspace] Cargo.toml above the current directory")?;
    let findings = pcpm::lint::lint_workspace(&root).map_err(|e| e.to_string())?;
    if opts.json {
        print!("{}", pcpm::lint::render_json(&findings));
    } else {
        print!("{}", pcpm::lint::render_human(&findings));
    }
    if findings.is_empty() {
        if !opts.json {
            eprintln!("# lint: clean");
        }
        Ok(())
    } else {
        // Findings are a lint verdict, not a CLI usage error: report the
        // count and exit 1 without the usage banner (2 stays reserved
        // for bad invocations and I/O errors).
        eprintln!("pcpm: lint: {} finding(s)", findings.len());
        std::process::exit(1);
    }
}

fn run_gen(opts: &Options) -> Result<(), String> {
    let graph = match opts.kind.as_str() {
        "rmat" => pcpm::graph::gen::rmat(&RmatConfig::graph500(
            opts.scale,
            opts.edge_factor,
            opts.seed,
        ))
        .map_err(|e| e.to_string())?,
        "er" => pcpm::graph::gen::erdos_renyi(opts.nodes, opts.edges, opts.seed)
            .map_err(|e| e.to_string())?,
        other => {
            return Err(format!(
                "unknown generator kind '{other}' (expected rmat|er)"
            ))
        }
    };
    pcpm::graph::io::save_binary(&graph, &opts.path).map_err(|e| e.to_string())?;
    eprintln!(
        "# wrote {} ({} nodes, {} edges, seed {})",
        opts.path,
        graph.num_nodes(),
        graph.num_edges(),
        opts.seed
    );
    Ok(())
}

/// `pcpm gen-updates`: seeded update stream against a base graph.
fn run_gen_updates(opts: &Options, graph: &Csr, cfg: &PcpmConfig) -> Result<(), String> {
    let out = opts.out.as_deref().ok_or("gen-updates needs --out FILE")?;
    let gen_cfg = UpdateGenConfig {
        batches: opts.batches,
        batch_size: opts.batch_size,
        delete_frac: opts.delete_frac,
        locality: opts.update_locality.map(|p| Locality {
            partition_nodes: cfg.partition_nodes(),
            partitions_per_batch: p,
        }),
        seed: opts.seed,
    };
    let batches = gen_updates(graph, &gen_cfg).map_err(|e| e.to_string())?;
    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
    let w = std::io::BufWriter::new(file);
    if opts.update_format == "binary" {
        write_updates_binary(w, &batches).map_err(|e| e.to_string())?;
    } else {
        write_updates(w, &batches).map_err(|e| e.to_string())?;
    }
    let ops: usize = batches.iter().map(|b| b.len()).sum();
    eprintln!(
        "# wrote {out} ({}): {} batches, {ops} ops, seed {}",
        opts.update_format,
        batches.len(),
        opts.seed
    );
    Ok(())
}

/// `pcpm stream`: replay an update file, reporting per-batch repair
/// time against the full rebuild it replaced.
fn run_stream(opts: &Options, graph: Csr, cfg: &PcpmConfig) -> Result<(), String> {
    let path = opts
        .updates
        .as_deref()
        .ok_or("stream needs --updates FILE")?;
    let data = std::fs::read(path).map_err(|e| e.to_string())?;
    let batches = read_updates_auto(&data, graph.num_nodes()).map_err(|e| e.to_string())?;
    // The PageRank phases run to convergence: default to a tolerance
    // and a generous iteration cap, but honour an explicit --iters.
    let mut cfg = *cfg;
    cfg.iterations = opts.iters.unwrap_or(500);
    cfg.tolerance = Some(cfg.tolerance.unwrap_or(1e-9));
    let mut rc = ReplayConfig {
        cfg,
        backend: opts.backend,
        compaction_threshold: opts.compaction_threshold,
        verify: opts.verify,
        cache: None,
    };
    if let Some(c) = &opts.cache {
        rc = rc.with_cache(c);
    }
    let base = Arc::new(graph);
    let report = replay(Arc::clone(&base), &batches, &rc).map_err(|e| e.to_string())?;
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    eprintln!(
        "# base: {} nodes, {} edges, {} partitions of {} nodes ({}, {} bins)",
        base.num_nodes(),
        base.num_edges(),
        report.batches.first().map_or(0, |b| b.total_partitions),
        cfg.partition_nodes(),
        opts.backend.name(),
        cfg.bin_format,
    );
    eprintln!(
        "# base prepare {:.0}us ({}), base pagerank {:.0}us",
        us(report.base_prepare),
        if report.loaded_from_snapshot {
            "snapshot cache"
        } else {
            "cold build"
        },
        us(report.base_pagerank)
    );
    if let Some(fp) = &report.final_cache {
        eprintln!("# cache: post-stream state saved to {}", fp.display());
    }
    println!("batch\tops\ttouched\trepair_us\trebuild_us\tspeedup\tmode\tpr_us\tpushes\tmax_div");
    for (i, b) in report.batches.iter().enumerate() {
        let mode = match b.outcome {
            UpdateOutcome::Repaired(_) => "repair",
            UpdateOutcome::Rebuilt => "rebuild",
        };
        let speedup = us(b.full_prepare) / us(b.repair).max(1e-9);
        println!(
            "{i}\t{}\t{}/{}\t{:.0}\t{:.0}\t{:.1}x\t{}{}\t{:.0}\t{}\t{}",
            b.ops,
            b.touched_partitions,
            b.total_partitions,
            us(b.repair),
            us(b.full_prepare),
            speedup,
            mode,
            if b.compacted { "+compact" } else { "" },
            us(b.incremental_pr),
            b.pushes,
            b.divergence.map_or("-".to_string(), |d| format!("{d:.2e}")),
        );
    }
    let total_repair = us(report.total_repair());
    let total_rebuild = us(report.total_full_prepare());
    eprintln!(
        "# totals: repair {:.0}us vs rebuild {:.0}us ({:.1}x)",
        total_repair,
        total_rebuild,
        total_rebuild / total_repair.max(1e-9)
    );
    if opts.verify {
        let max = report
            .batches
            .iter()
            .filter_map(|b| b.divergence)
            .fold(0.0f64, f64::max);
        eprintln!("# verify: max |incremental - cold| = {max:.2e}");
        if max > 1e-6 {
            return Err(format!(
                "incremental PageRank diverged from cold start: {max:.2e} > 1e-6"
            ));
        }
    }
    Ok(())
}

/// `pcpm build-cache`: build the PCPM engine once and persist its
/// prepared state (graph + PNG + bins) as a snapshot file — the
/// build-once half of the build-once, serve-many workflow.
fn run_build_cache(
    opts: &Options,
    graph: &Csr,
    weights: &Option<EdgeWeights>,
    cfg: &PcpmConfig,
) -> Result<(), String> {
    let out = opts.out.as_deref().ok_or("build-cache needs --out FILE")?;
    if opts.backend != BackendKind::Pcpm {
        return Err(
            "build-cache requires --backend pcpm (only the PCPM dataplane snapshots)".into(),
        );
    }
    let t0 = std::time::Instant::now();
    // builder_shared: snapshotting requires the engine to retain its
    // graph, which is only free through a shared handle.
    let shared = Arc::new(graph.clone());
    let mut builder = Engine::<PlusF32>::builder_shared(&shared)
        .config(*cfg)
        .backend(opts.backend);
    if let Some(w) = weights {
        builder = builder.weights(w);
    }
    let engine = builder.build().map_err(|e| e.to_string())?;
    let build = t0.elapsed();
    let t0 = std::time::Instant::now();
    let bytes = engine.save_snapshot(out).map_err(|e| e.to_string())?;
    eprintln!(
        "# wrote {out}: {} KB ({} bins{}), built in {build:?}, saved in {:?}",
        bytes / 1024,
        cfg.bin_format,
        if weights.is_some() { ", weighted" } else { "" },
        t0.elapsed(),
    );
    eprintln!("# serve it: pcpm pagerank <graph> --cache {out} [same config flags]");
    Ok(())
}

/// Engine for `pagerank`, honouring `--cache`: load the snapshot when
/// the file exists (verifying graph + config), otherwise build cold and
/// — when a cache path was given — save the build there for next time.
fn pagerank_engine(
    opts: &Options,
    graph: &Csr,
    weights: &Option<EdgeWeights>,
    cfg: &PcpmConfig,
) -> Result<Engine<PlusF32>, String> {
    if let Some(cache) = &opts.cache {
        if opts.backend != BackendKind::Pcpm {
            return Err("--cache requires --backend pcpm".into());
        }
        if std::path::Path::new(cache).exists() {
            // An unreadable file (corruption, truncation, version skew)
            // falls through to a cold rebuild that overwrites it; a
            // VALID snapshot for the wrong config/graph stays a hard
            // error — silently serving something else would be worse.
            match EngineBuilder::<PlusF32>::from_snapshot(cache) {
                Ok(b) => {
                    let mut b = b
                        .expect_config(cfg, weights.is_some())
                        .map_err(|e| format!("{cache}: {e} (rebuild with `pcpm build-cache`)"))?
                        .expect_graph(graph)
                        .map_err(|e| format!("{cache}: {e} (rebuild with `pcpm build-cache`)"))?
                        .kernel(cfg.kernel);
                    if let Some(t) = opts.threads {
                        b = b.threads(t);
                    }
                    let engine = b.build().map_err(|e| e.to_string())?;
                    let load = engine.report().snapshot_load.expect("loaded engine");
                    eprintln!("# cache: loaded {cache} in {load:?} (prepare skipped)");
                    return Ok(engine);
                }
                Err(e) => eprintln!("# cache: {cache} unreadable ({e}); rebuilding"),
            }
        }
    }
    let engine = if opts.cache.is_some() {
        // Snapshotting requires a retained graph: share it.
        let shared = Arc::new(graph.clone());
        let mut builder = Engine::<PlusF32>::builder_shared(&shared)
            .config(*cfg)
            .backend(opts.backend);
        if let Some(w) = weights {
            builder = builder.weights(w);
        }
        builder.build().map_err(|e| e.to_string())?
    } else {
        let mut builder = Engine::<PlusF32>::builder(graph)
            .config(*cfg)
            .backend(opts.backend);
        if let Some(w) = weights {
            builder = builder.weights(w);
        }
        builder.build().map_err(|e| e.to_string())?
    };
    if let Some(cache) = &opts.cache {
        let bytes = engine.save_snapshot(cache).map_err(|e| e.to_string())?;
        eprintln!("# cache: cold build saved to {cache} ({} KB)", bytes / 1024);
    }
    Ok(engine)
}

/// Ranks printed exactly like the offline `pagerank` command so served
/// and offline answers diff clean in CI.
fn print_top_ranks(scores: &[f32], top: usize) {
    let mut ranked: Vec<(u32, f32)> = scores
        .iter()
        .copied()
        .enumerate()
        .map(|(v, s)| (v as u32, s))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (v, s) in ranked.iter().take(top) {
        println!("{v}\t{s:.6e}");
    }
}

/// `pcpm serve`: load one snapshot per positional path and serve them
/// until SIGTERM/SIGINT or a protocol `shutdown` request.
fn run_serve(opts: &Options) -> Result<(), String> {
    let mut engines = Vec::new();
    for path in std::iter::once(&opts.path).chain(&opts.extra) {
        let spec = EngineSpec::open(path).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "# engine {}: {} ({} nodes, {} edges{}, {} bins, loaded in {:?})",
            engines.len(),
            path,
            spec.snapshot.graph().num_nodes(),
            spec.snapshot.graph().num_edges(),
            if spec.snapshot.is_weighted() {
                ", weighted"
            } else {
                ""
            },
            spec.snapshot.bin_format(),
            spec.load,
        );
        engines.push(spec);
    }
    let metrics_addr = opts
        .metrics_addr
        .as_deref()
        .map(|a| {
            a.parse()
                .map_err(|e| format!("bad --metrics-addr {a}: {e}"))
        })
        .transpose()?;
    let sc = ServerConfig {
        workers: opts.workers,
        threads: opts.threads,
        metrics_addr,
    };
    let server = pcpm::serve::Server::bind(opts.listen.as_str(), engines, sc)
        .map_err(|e| format!("bind {}: {e}", opts.listen))?;
    install_termination_handler(server.shutdown_flag());
    eprintln!(
        "# serving on {} with {} workers (stop: SIGTERM or `pcpm query {} --op shutdown`)",
        server.local_addr(),
        opts.workers,
        server.local_addr(),
    );
    if let Some(maddr) = server.metrics_addr() {
        eprintln!("# metrics on http://{maddr}/metrics (Prometheus text)");
    }
    server.run().map_err(|e| e.to_string())
}

fn query_params(opts: &Options) -> QueryParams {
    QueryParams {
        iterations: opts.iters.unwrap_or(20) as u32,
        damping: opts.damping,
        tolerance: opts.tolerance,
        redistribute_dangling: false,
    }
}

fn serve_err(e: ServeError) -> String {
    e.to_string()
}

/// `pcpm query`: one operation against a running `pcpm serve`.
fn run_query(opts: &Options) -> Result<(), String> {
    let mut client = match opts.timeout {
        Some(secs) => {
            Client::connect_timeout(opts.path.as_str(), std::time::Duration::from_secs_f64(secs))
        }
        None => Client::connect(opts.path.as_str()),
    }
    .map_err(|e| format!("connect {}: {e}", opts.path))?;
    match opts.op.as_str() {
        "health" => {
            let (epoch, engines) = client.health().map_err(serve_err)?;
            println!("epoch {epoch}, {engines} engine(s)");
        }
        "stats" => {
            let s = client.stats().map_err(serve_err)?;
            for e in &s.engines {
                eprintln!(
                    "# engine: {} ({} nodes, {} edges{}, {} bins, {} B partitions, loaded in {:?})",
                    e.path,
                    e.nodes,
                    e.edges,
                    if e.weighted { ", weighted" } else { "" },
                    e.bin_format,
                    e.partition_bytes,
                    e.load,
                );
            }
            // The human table (p50/p90/p99, error rates, queue/writer
            // split, slow-query ring) is shared with the bench suite.
            print!("{}", s.render_human());
        }
        "pagerank" => {
            let r = client
                .pagerank(opts.engine, &query_params(opts))
                .map_err(serve_err)?;
            eprintln!(
                "# epoch {}, {} iterations ({})",
                r.epoch,
                r.iterations,
                if r.converged { "converged" } else { "cap" }
            );
            print_top_ranks(&r.scores, opts.top);
        }
        "ppr" => {
            if opts.seeds.is_empty() {
                return Err("query --op ppr needs --seeds 1,2,3".into());
            }
            let r = client
                .personalized_pagerank(opts.engine, &query_params(opts), &opts.seeds)
                .map_err(serve_err)?;
            eprintln!(
                "# epoch {}, {} iterations ({})",
                r.epoch,
                r.iterations,
                if r.converged { "converged" } else { "cap" }
            );
            print_top_ranks(&r.scores, opts.top);
        }
        "bfs" => {
            let (epoch, levels) = client.bfs(opts.engine, opts.source).map_err(serve_err)?;
            let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
            eprintln!("# epoch {epoch}, {reached} reached from {}", opts.source);
            let mut hist = std::collections::BTreeMap::new();
            for &l in levels.iter().filter(|&&l| l != u32::MAX) {
                *hist.entry(l).or_insert(0u64) += 1;
            }
            for (level, count) in hist {
                println!("{level}\t{count}");
            }
        }
        "sssp" => {
            let (epoch, dist) = client.sssp(opts.engine, opts.source).map_err(serve_err)?;
            let finite = dist.iter().filter(|d| d.is_finite()).count();
            eprintln!("# epoch {epoch}, {finite} reachable from {}", opts.source);
            let mut ranked: Vec<(u32, f32)> = dist
                .iter()
                .copied()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .map(|(v, d)| (v as u32, d))
                .collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (v, d) in ranked.iter().take(opts.top) {
                println!("{v}\t{d:.4}");
            }
        }
        "update" => {
            let path = opts
                .updates
                .as_deref()
                .ok_or("query --op update needs --updates FILE")?;
            let data = std::fs::read(path).map_err(|e| e.to_string())?;
            // The server re-validates node ranges against its own graph.
            let batches = read_updates_auto(&data, u32::MAX).map_err(|e| e.to_string())?;
            for (i, batch) in batches.iter().enumerate() {
                let r = client.update(opts.engine, batch).map_err(serve_err)?;
                let mode = match r.outcome {
                    UpdateOutcome::Repaired(_) => "repair",
                    UpdateOutcome::Rebuilt => "rebuild",
                };
                println!(
                    "batch {i}: epoch {}, {mode}, {} applied, {} ignored",
                    r.epoch, r.applied, r.ignored
                );
            }
        }
        "shutdown" => {
            let epoch = client.shutdown().map_err(serve_err)?;
            println!("server draining at epoch {epoch}");
        }
        other => {
            return Err(format!(
                "unknown op '{other}' (expected health|stats|pagerank|ppr|bfs|sssp|update|shutdown)"
            ))
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let trace_out = opts.trace_out.clone();
    if trace_out.is_some() {
        // Counters and spans are both armed for the whole command; the
        // counters feed the report lines, the spans feed the trace file.
        pcpm::core::telemetry::counters().set_enabled(true);
        pcpm::core::telemetry::start_tracing();
    }
    let result = run_command(opts);
    if let Some(path) = trace_out {
        let events = pcpm::core::telemetry::stop_tracing();
        let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
        let w = std::io::BufWriter::new(file);
        pcpm::core::telemetry::write_chrome_trace(w, &events)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "# trace: wrote {path} ({} spans; open in chrome://tracing or Perfetto)",
            events.len()
        );
    }
    result
}

fn run_command(opts: Options) -> Result<(), String> {
    if opts.command == "lint" {
        // No graph input: the workspace sources are the subject.
        return run_lint(&opts);
    }
    if opts.command == "gen" {
        // The positional path is the *output*; nothing to load.
        return run_gen(&opts);
    }
    if opts.command == "serve" {
        // Positional paths are snapshots, not a graph.
        return run_serve(&opts);
    }
    if opts.command == "query" {
        // The positional path is the server address.
        return run_query(&opts);
    }
    let (graph, weights) = load(&opts)?;
    let cfg = config(&opts);
    if opts.command == "gen-updates" {
        return run_gen_updates(&opts, &graph, &cfg);
    }
    if opts.command == "build-cache" {
        return run_build_cache(&opts, &graph, &weights, &cfg);
    }
    if opts.command == "stream" {
        if weights.is_some() {
            // The streaming layer models structural change only; silently
            // dropping the weights would misreport the workload.
            return Err("stream replays unweighted graphs; use an unweighted input \
                 (weights in the .mtx would be ignored)"
                .into());
        }
        return run_stream(&opts, graph, &cfg);
    }
    match opts.command.as_str() {
        "stats" => {
            let s = pcpm::graph::stats::stats(&graph);
            println!("nodes          {}", s.num_nodes);
            println!("edges          {}", s.num_edges);
            println!("avg degree     {:.2}", s.avg_degree);
            println!("max out-degree {}", s.max_out_degree);
            println!("max in-degree  {}", s.max_in_degree);
            println!("dangling       {}", s.dangling);
            println!("avg edge span  {:.1}", s.avg_edge_span);
        }
        "pagerank" => {
            // Build the engine here (rather than through `pagerank_on`)
            // so its report — bin format, per-format dest-ID compression,
            // aux memory — can be surfaced after the run, and so
            // `--cache` can swap the build for a snapshot load.
            let mut engine = pagerank_engine(&opts, &graph, &weights, &cfg)?;
            let r = match &weights {
                Some(w) => weighted_pagerank_with_unified_engine(&graph, w, &cfg, &mut engine)
                    .map_err(|e| e.to_string())?,
                None => pagerank_with_unified_engine(&graph, &cfg, &mut engine, None)
                    .map_err(|e| e.to_string())?,
            };
            let report = engine.report();
            eprintln!(
                "# {} iterations ({}), r = {:.2}, {:?} total",
                r.iterations,
                if r.converged { "converged" } else { "cap" },
                r.compression_ratio.unwrap_or(1.0),
                r.timings.total()
            );
            if let (Some(format), Some(ratio)) = (report.bin_format, report.bin_compression) {
                eprintln!(
                    "# bins: {format} format, {ratio:.2}x dest-id compression vs wide, {} KB aux",
                    report.aux_memory_bytes / 1024
                );
            }
            if let Some(total) = report.dest_stream_total_bytes() {
                match report.dest_stream_gbps() {
                    Some(gbps) => eprintln!(
                        "# dest stream: {:.1} MB scanned over {} steps, {gbps:.2} GB/s effective",
                        total as f64 / 1e6,
                        report.steps
                    ),
                    None => eprintln!(
                        "# dest stream: {:.1} MB scanned over {} steps",
                        total as f64 / 1e6,
                        report.steps
                    ),
                }
            }
            eprintln!(
                "# pool: {} workers spawned, {} jobs dispatched",
                report.pool_workers_spawned, report.pool_jobs_dispatched
            );
            print_top_ranks(&r.scores, opts.top);
        }
        "ppr" => {
            if weights.is_some() {
                return Err(
                    "ppr serves unweighted graphs (weights in the .mtx would be ignored)".into(),
                );
            }
            if opts.seeds.is_empty() && opts.sources.is_empty() {
                return Err("ppr needs --seeds 1,2,3 or --sources 1,2,3".into());
            }
            if !opts.seeds.is_empty() && !opts.sources.is_empty() {
                return Err(
                    "ppr takes --seeds (one query) or --sources (a batch), not both".into(),
                );
            }
            // Shares the pagerank cache path: PPR runs on the same
            // (+, x) engine, so one snapshot serves both.
            let mut engine = pagerank_engine(&opts, &graph, &weights, &cfg)?;
            if !opts.sources.is_empty() {
                // One batched pass per iteration: each source is its own
                // single-seed query, and all of them share every scan of
                // the destID bins through `Engine::step_many`. Ranks are
                // bit-identical to running the sources one at a time.
                let seed_sets: Vec<Vec<u32>> = opts.sources.iter().map(|&s| vec![s]).collect();
                let rs = personalized_pagerank_many_with_unified_engine(
                    &graph,
                    &seed_sets,
                    &cfg,
                    &mut engine,
                )
                .map_err(|e| e.to_string())?;
                let report = engine.report();
                eprintln!(
                    "# {} sources batched, {} passes, {:.2} queries/pass amortized",
                    opts.sources.len(),
                    report.steps,
                    report.batch_amortization(),
                );
                for (src, r) in opts.sources.iter().zip(&rs) {
                    println!("# source {src}");
                    eprintln!(
                        "# source {src}: {} iterations ({})",
                        r.iterations,
                        if r.converged { "converged" } else { "cap" },
                    );
                    print_top_ranks(&r.scores, opts.top);
                }
            } else {
                let r = personalized_pagerank_with_unified_engine(
                    &graph,
                    &opts.seeds,
                    &cfg,
                    &mut engine,
                )
                .map_err(|e| e.to_string())?;
                eprintln!(
                    "# {} iterations ({}), {} seeds",
                    r.iterations,
                    if r.converged { "converged" } else { "cap" },
                    opts.seeds.len(),
                );
                print_top_ranks(&r.scores, opts.top);
            }
        }
        "components" => {
            let labels =
                connected_components_on(&graph, &cfg, opts.backend).map_err(|e| e.to_string())?;
            let mut counts = std::collections::HashMap::new();
            for &l in &labels {
                *counts.entry(l).or_insert(0u64) += 1;
            }
            let mut by_size: Vec<(u32, u64)> = counts.into_iter().collect();
            by_size.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            eprintln!("# {} components", by_size.len());
            for (label, size) in by_size.iter().take(opts.top) {
                println!("{label}\t{size}");
            }
        }
        "bfs" => {
            let levels = bfs_levels_on(&graph, opts.source, &cfg, opts.backend)
                .map_err(|e| e.to_string())?;
            let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
            eprintln!("# {} reached from {}", reached, opts.source);
            let mut hist = std::collections::BTreeMap::new();
            for &l in levels.iter().filter(|&&l| l != u32::MAX) {
                *hist.entry(l).or_insert(0u64) += 1;
            }
            for (level, count) in hist {
                println!("{level}\t{count}");
            }
        }
        "sssp" => {
            let w = weights.ok_or("sssp needs a weighted .mtx input (--mtx)")?;
            let dist =
                sssp_on(&graph, &w, opts.source, &cfg, opts.backend).map_err(|e| e.to_string())?;
            let finite = dist.iter().filter(|d| d.is_finite()).count();
            eprintln!("# {} reachable from {}", finite, opts.source);
            let mut ranked: Vec<(u32, f32)> = dist
                .iter()
                .copied()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .map(|(v, d)| (v as u32, d))
                .collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (v, d) in ranked.iter().take(opts.top) {
                println!("{v}\t{d:.4}");
            }
        }
        "convert" => {
            let out = opts.out.as_deref().ok_or("convert needs --out FILE")?;
            pcpm::graph::io::save_binary(&graph, out).map_err(|e| e.to_string())?;
            eprintln!("# wrote {out}");
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pcpm: {e}");
            eprintln!(
                "usage: pcpm <stats|pagerank|ppr|components|bfs|sssp|convert|gen|gen-updates|stream|build-cache|serve|query|lint> <graph|snapshot|addr> [flags]"
            );
            ExitCode::from(2)
        }
    }
}
