//! `pcpm` — command-line graph analytics on the partition-centric engine.
//!
//! ```text
//! pcpm stats      <graph>                 structural summary
//! pcpm pagerank   <graph> [--top K]       PageRank (weighted when .mtx has values)
//! pcpm components <graph>                 connected components
//! pcpm bfs        <graph> --source V      BFS levels
//! pcpm sssp       <graph> --source V      shortest paths (needs weighted .mtx)
//! pcpm convert    <graph> --out FILE      any input -> binary format
//!
//! common flags: --binary (pcpm binary input) | --mtx (Matrix Market input)
//!               --iters N --damping D --tolerance T --partition-bytes B
//!               --top K (print only the K best rows)
//!               --backend pcpm|pull|push|edge-centric (dataplane to run on)
//! ```
//!
//! Text inputs are SNAP-style whitespace edge lists with `#` comments.

use pcpm::prelude::*;
use std::process::ExitCode;

struct Options {
    command: String,
    path: String,
    binary: bool,
    mtx: bool,
    iters: usize,
    damping: f64,
    tolerance: Option<f64>,
    partition_bytes: usize,
    top: usize,
    source: u32,
    out: Option<String>,
    backend: BackendKind,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    let mut opts = Options {
        command,
        path: String::new(),
        binary: false,
        mtx: false,
        iters: 20,
        damping: 0.85,
        tolerance: None,
        partition_bytes: 256 * 1024,
        top: 10,
        source: 0,
        out: None,
        backend: BackendKind::Pcpm,
    };
    let mut positional = Vec::new();
    let mut rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        let take_value = |rest: &mut Vec<String>, i: &mut usize| -> Result<String, String> {
            *i += 1;
            rest.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag {} needs a value", rest[*i - 1]))
        };
        match rest[i].as_str() {
            "--binary" => opts.binary = true,
            "--mtx" => opts.mtx = true,
            "--iters" => {
                opts.iters = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--damping" => {
                opts.damping = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--tolerance" => {
                opts.tolerance = Some(
                    take_value(&mut rest, &mut i)?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--partition-bytes" => {
                opts.partition_bytes = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--top" => {
                opts.top = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--source" => {
                opts.source = take_value(&mut rest, &mut i)?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--out" => opts.out = Some(take_value(&mut rest, &mut i)?),
            "--backend" => {
                opts.backend = match take_value(&mut rest, &mut i)?.as_str() {
                    "pcpm" => BackendKind::Pcpm,
                    "pull" => BackendKind::Pull,
                    "push" => BackendKind::Push,
                    "edge-centric" => BackendKind::EdgeCentric,
                    other => {
                        return Err(format!(
                            "unknown backend '{other}' (expected pcpm|pull|push|edge-centric)"
                        ))
                    }
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            pos => positional.push(pos.to_string()),
        }
        i += 1;
    }
    opts.path = positional.first().cloned().ok_or("missing graph path")?;
    Ok(opts)
}

fn load(opts: &Options) -> Result<(Csr, Option<EdgeWeights>), String> {
    if opts.binary {
        let g = pcpm::graph::io::load_binary(&opts.path).map_err(|e| e.to_string())?;
        Ok((g, None))
    } else if opts.mtx {
        let file = std::fs::File::open(&opts.path).map_err(|e| e.to_string())?;
        pcpm::graph::mm::read_matrix_market(file).map_err(|e| e.to_string())
    } else {
        let file = std::fs::File::open(&opts.path).map_err(|e| e.to_string())?;
        let g = pcpm::graph::io::read_edge_list(file, None).map_err(|e| e.to_string())?;
        Ok((g, None))
    }
}

fn config(opts: &Options) -> PcpmConfig {
    let mut cfg = PcpmConfig::default()
        .with_partition_bytes(opts.partition_bytes)
        .with_iterations(opts.iters);
    cfg.damping = opts.damping;
    cfg.tolerance = opts.tolerance;
    cfg
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let (graph, weights) = load(&opts)?;
    let cfg = config(&opts);
    match opts.command.as_str() {
        "stats" => {
            let s = pcpm::graph::stats::stats(&graph);
            println!("nodes          {}", s.num_nodes);
            println!("edges          {}", s.num_edges);
            println!("avg degree     {:.2}", s.avg_degree);
            println!("max out-degree {}", s.max_out_degree);
            println!("max in-degree  {}", s.max_in_degree);
            println!("dangling       {}", s.dangling);
            println!("avg edge span  {:.1}", s.avg_edge_span);
        }
        "pagerank" => {
            let r = match &weights {
                Some(w) => weighted_pagerank_on(&graph, w, &cfg, opts.backend)
                    .map_err(|e| e.to_string())?,
                None => pagerank_on(&graph, &cfg, opts.backend).map_err(|e| e.to_string())?,
            };
            eprintln!(
                "# {} iterations ({}), r = {:.2}, {:?} total",
                r.iterations,
                if r.converged { "converged" } else { "cap" },
                r.compression_ratio.unwrap_or(1.0),
                r.timings.total()
            );
            let mut ranked: Vec<(u32, f32)> = r
                .scores
                .iter()
                .copied()
                .enumerate()
                .map(|(v, s)| (v as u32, s))
                .collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (v, s) in ranked.iter().take(opts.top) {
                println!("{v}\t{s:.6e}");
            }
        }
        "components" => {
            let labels =
                connected_components_on(&graph, &cfg, opts.backend).map_err(|e| e.to_string())?;
            let mut counts = std::collections::HashMap::new();
            for &l in &labels {
                *counts.entry(l).or_insert(0u64) += 1;
            }
            let mut by_size: Vec<(u32, u64)> = counts.into_iter().collect();
            by_size.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            eprintln!("# {} components", by_size.len());
            for (label, size) in by_size.iter().take(opts.top) {
                println!("{label}\t{size}");
            }
        }
        "bfs" => {
            let levels = bfs_levels_on(&graph, opts.source, &cfg, opts.backend)
                .map_err(|e| e.to_string())?;
            let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
            eprintln!("# {} reached from {}", reached, opts.source);
            let mut hist = std::collections::BTreeMap::new();
            for &l in levels.iter().filter(|&&l| l != u32::MAX) {
                *hist.entry(l).or_insert(0u64) += 1;
            }
            for (level, count) in hist {
                println!("{level}\t{count}");
            }
        }
        "sssp" => {
            let w = weights.ok_or("sssp needs a weighted .mtx input (--mtx)")?;
            let dist =
                sssp_on(&graph, &w, opts.source, &cfg, opts.backend).map_err(|e| e.to_string())?;
            let finite = dist.iter().filter(|d| d.is_finite()).count();
            eprintln!("# {} reachable from {}", finite, opts.source);
            let mut ranked: Vec<(u32, f32)> = dist
                .iter()
                .copied()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .map(|(v, d)| (v as u32, d))
                .collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (v, d) in ranked.iter().take(opts.top) {
                println!("{v}\t{d:.4}");
            }
        }
        "convert" => {
            let out = opts.out.as_deref().ok_or("convert needs --out FILE")?;
            pcpm::graph::io::save_binary(&graph, out).map_err(|e| e.to_string())?;
            eprintln!("# wrote {out}");
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pcpm: {e}");
            eprintln!("usage: pcpm <stats|pagerank|components|bfs|sssp|convert> <graph> [flags]");
            ExitCode::from(2)
        }
    }
}
