//! # PCPM — Partition-Centric Processing for PageRank and SpMV
//!
//! A complete Rust reproduction of *"Accelerating PageRank using
//! Partition-Centric Processing"* (Lakhotia, Kannan, Prasanna — USENIX ATC
//! 2018), packaged as one umbrella crate re-exporting the workspace:
//!
//! - [`graph`] — CSR graphs, generators, orderings, I/O (`pcpm-graph`);
//! - [`core`] — partitions, the PNG layout, scatter/gather, and the
//!   unified [`Engine`](core::Engine)/[`Backend`](core::Backend)
//!   execution API (`pcpm-core`);
//! - [`algos`] — PageRank variants, BFS, SSSP, components, Katz, HITS —
//!   all running on any backend (`pcpm-algos`);
//! - [`stream`] — the streaming layer: batched edge updates, the
//!   [`DeltaGraph`](stream::DeltaGraph) overlay, incremental bin repair
//!   via [`Engine::update`](core::Engine::update) and delta-PageRank
//!   replay (`pcpm-stream`);
//! - [`baselines`] — PDPR (pull), push, BVGAS, edge-centric and grid
//!   kernels, each also pluggable as a backend (`pcpm-baselines`);
//! - [`memsim`] — the cache simulator, traffic replays and analytical
//!   models (`pcpm-memsim`);
//! - [`serve`] — the long-lived query dataplane: `.pcpmc` snapshots
//!   served over TCP with a worker pool, epoch-tagged answers and
//!   RCU-style engine swaps on update (`pcpm-serve`);
//! - [`lint`] — the workspace-native static-analysis pass (`pcpm lint`)
//!   enforcing the determinism, unsafe-budget, serve-panic-freedom and
//!   telemetry-registry contracts (`pcpm-lint`).
//!
//! # Quick start
//!
//! ```
//! use pcpm::prelude::*;
//!
//! // Build a small social-network-like graph.
//! let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(10, 8, 42)).unwrap();
//!
//! // Run partition-centric PageRank.
//! let cfg = PcpmConfig::default().with_iterations(10);
//! let result = pagerank(&g, &cfg).unwrap();
//!
//! // The engine reports its PNG compression ratio alongside the scores.
//! assert!(result.compression_ratio.unwrap() >= 1.0);
//! assert_eq!(result.scores.len() as u32, g.num_nodes());
//! ```
//!
//! # The builder API
//!
//! Every execution goes through one algebra-generic engine; the backend,
//! bin encoding and phase variants are chosen (and validated) at build
//! time:
//!
//! ```
//! use pcpm::prelude::*;
//! use pcpm::core::algebra::PlusF32;
//!
//! let g = pcpm::graph::gen::erdos_renyi(1000, 8000, 7).unwrap();
//! let w = EdgeWeights::random(&g, 3);
//! let mut engine = Engine::<PlusF32>::builder(&g)
//!     .partition_bytes(16 * 1024)
//!     .weights(&w)
//!     .compact_bins(true)
//!     .scatter(ScatterKind::Png)
//!     .gather(GatherKind::BranchAvoiding)
//!     .build()
//!     .unwrap();
//! let x = vec![1.0f32; 1000];
//! let mut y = vec![0.0f32; 1000];
//! engine.step(&x, &mut y).unwrap();
//!
//! // Same computation on a baseline dataplane: swap the backend.
//! let mut pull = Engine::<PlusF32>::builder(&g)
//!     .weights(&w)
//!     .backend(BackendKind::Pull)
//!     .build()
//!     .unwrap();
//! let mut y2 = vec![0.0f32; 1000];
//! pull.step(&x, &mut y2).unwrap();
//! for (a, b) in y.iter().zip(&y2) {
//!     assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pcpm_algos as algos;
pub use pcpm_baselines as baselines;
pub use pcpm_core as core;
pub use pcpm_graph as graph;
pub use pcpm_lint as lint;
pub use pcpm_memsim as memsim;
pub use pcpm_serve as serve;
pub use pcpm_stream as stream;

/// Commonly used items for `use pcpm::prelude::*`.
pub mod prelude {
    pub use pcpm_algos::{
        bfs_levels, bfs_levels_on, bfs_levels_with_engine, connected_components,
        connected_components_on, incremental_pagerank, personalized_pagerank,
        personalized_pagerank_many, personalized_pagerank_many_with_unified_engine,
        personalized_pagerank_on, personalized_pagerank_with_unified_engine, propagation_engine,
        run_to_fixpoint, sssp, sssp_on, sssp_with_engine, weighted_pagerank, weighted_pagerank_on,
        weighted_pagerank_with_unified_engine,
    };
    pub use pcpm_baselines::{bvgas, pdpr, push_pagerank, serial_pagerank};
    pub use pcpm_core::pagerank::{pagerank, pagerank_on, pagerank_with_variant};
    pub use pcpm_core::spmv::SpmvMatrix;
    pub use pcpm_core::{
        Backend, BackendKind, BinFormatKind, Engine, EngineBuilder, ExecutionReport, GatherKind,
        KernelKind, Partitioner, PcpmConfig, Png, PrResult, ScatterKind, Snapshot,
        SnapshotEngineBuilder, SnapshotError,
    };
    pub use pcpm_core::{EdgeOp, EdgeUpdate, RepairStats, UpdateBatch, UpdateOutcome};
    pub use pcpm_graph::gen::{RmatConfig, WebConfig};
    pub use pcpm_graph::{Csr, EdgeWeights, GraphBuilder};
    pub use pcpm_serve::{Client, EngineSpec, QueryParams, Server, ServerConfig};
    pub use pcpm_stream::{
        gen_updates, read_updates_auto, replay, write_updates_binary, DeltaGraph, ReplayConfig,
        UpdateGenConfig, UpdateLog,
    };

    // Pre-redesign entry points, kept one release for migration.
    #[allow(deprecated)]
    pub use pcpm_algos::PropagationEngine;
    #[allow(deprecated)]
    pub use pcpm_core::spmv::SpmvEngine;
    #[allow(deprecated)]
    pub use pcpm_core::PcpmEngine;
}
