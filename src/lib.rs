//! # PCPM — Partition-Centric Processing for PageRank and SpMV
//!
//! A complete Rust reproduction of *"Accelerating PageRank using
//! Partition-Centric Processing"* (Lakhotia, Kannan, Prasanna — USENIX ATC
//! 2018), packaged as one umbrella crate re-exporting the workspace:
//!
//! - [`graph`] — CSR graphs, generators, orderings, I/O (`pcpm-graph`);
//! - [`core`] — partitions, the PNG layout, scatter/gather, the PageRank
//!   driver and generic SpMV (`pcpm-core`);
//! - [`baselines`] — PDPR (pull), push, and BVGAS kernels
//!   (`pcpm-baselines`);
//! - [`memsim`] — the cache simulator, traffic replays and analytical
//!   models (`pcpm-memsim`).
//!
//! # Quick start
//!
//! ```
//! use pcpm::prelude::*;
//!
//! // Build a small social-network-like graph.
//! let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(10, 8, 42)).unwrap();
//!
//! // Run partition-centric PageRank.
//! let cfg = PcpmConfig::default().with_iterations(10);
//! let result = pagerank(&g, &cfg).unwrap();
//!
//! // The engine reports its PNG compression ratio alongside the scores.
//! assert!(result.compression_ratio.unwrap() >= 1.0);
//! assert_eq!(result.scores.len() as u32, g.num_nodes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pcpm_algos as algos;
pub use pcpm_baselines as baselines;
pub use pcpm_core as core;
pub use pcpm_graph as graph;
pub use pcpm_memsim as memsim;

/// Commonly used items for `use pcpm::prelude::*`.
pub mod prelude {
    pub use pcpm_algos::{
        bfs_levels, connected_components, personalized_pagerank, sssp, weighted_pagerank,
    };
    pub use pcpm_baselines::{bvgas, pdpr, push_pagerank, serial_pagerank};
    pub use pcpm_core::pagerank::{pagerank, pagerank_with_variant};
    pub use pcpm_core::spmv::{SpmvEngine, SpmvMatrix};
    pub use pcpm_core::{Partitioner, PcpmConfig, PcpmEngine, Png, PrResult};
    pub use pcpm_graph::gen::{RmatConfig, WebConfig};
    pub use pcpm_graph::{Csr, EdgeWeights, GraphBuilder};
}
