//! Cross-cutting invariants of the programming-model algorithms:
//! permutation equivariance, cross-algorithm consistency, and agreement
//! across partition sizes.

use pcpm::graph::order::{apply_permutation, inverse_permutation, random_order};
use pcpm::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Csr> {
    (4u32..100).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..500).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n).expect("builder");
            b.extend(edges);
            b.build().expect("build")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn components_are_permutation_equivariant(g in arb_graph(), seed in any::<u64>()) {
        let cfg = PcpmConfig::default().with_partition_bytes(64);
        let base = connected_components(&g, &cfg).unwrap();
        let perm = random_order(g.num_nodes(), seed);
        let pg = apply_permutation(&g, &perm).unwrap();
        let permuted = connected_components(&pg, &cfg).unwrap();
        let inv = inverse_permutation(&perm);
        // Same partition of the nodes: two nodes share a component in the
        // permuted run iff they did originally.
        for a in 0..g.num_nodes() as usize {
            for b in (a + 1)..g.num_nodes() as usize {
                let orig_same = base[inv[a] as usize] == base[inv[b] as usize];
                let perm_same = permuted[a] == permuted[b];
                prop_assert_eq!(orig_same, perm_same, "nodes {} {}", a, b);
            }
        }
    }

    #[test]
    fn bfs_is_permutation_equivariant(g in arb_graph(), seed in any::<u64>()) {
        let cfg = PcpmConfig::default().with_partition_bytes(64);
        let base = bfs_levels(&g, 0, &cfg).unwrap();
        let perm = random_order(g.num_nodes(), seed);
        let pg = apply_permutation(&g, &perm).unwrap();
        let permuted = bfs_levels(&pg, perm[0], &cfg).unwrap();
        for old in 0..g.num_nodes() as usize {
            prop_assert_eq!(base[old], permuted[perm[old] as usize], "node {}", old);
        }
    }

    #[test]
    fn partition_size_never_changes_any_result(g in arb_graph()) {
        let w = EdgeWeights::random(&g, 5);
        let mut reference: Option<(Vec<u32>, Vec<u32>, Vec<f32>)> = None;
        for q in [1u32, 7, 33, 1000] {
            let cfg = PcpmConfig::default().with_partition_bytes(q as usize * 4);
            let cc = connected_components(&g, &cfg).unwrap();
            let bfs = bfs_levels(&g, 0, &cfg).unwrap();
            let dist = sssp(&g, &w, 0, &cfg).unwrap();
            match &reference {
                None => reference = Some((cc, bfs, dist)),
                Some((rcc, rbfs, rdist)) => {
                    prop_assert_eq!(&cc, rcc, "components differ at q={}", q);
                    prop_assert_eq!(&bfs, rbfs, "bfs differs at q={}", q);
                    for (a, b) in dist.iter().zip(rdist) {
                        let same = (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-4;
                        prop_assert!(same, "sssp differs at q={}: {} vs {}", q, a, b);
                    }
                }
            }
        }
    }

    #[test]
    fn sssp_never_exceeds_bfs_hops_times_max_weight(g in arb_graph()) {
        // With weights in (0, 1], dist(v) <= bfs_level(v) * 1.0 and
        // reachability sets coincide.
        let w = EdgeWeights::random(&g, 9);
        let cfg = PcpmConfig::default().with_partition_bytes(128);
        let dist = sssp(&g, &w, 0, &cfg).unwrap();
        let levels = bfs_levels(&g, 0, &cfg).unwrap();
        for v in 0..g.num_nodes() as usize {
            if levels[v] == u32::MAX {
                prop_assert!(dist[v].is_infinite());
            } else {
                prop_assert!(dist[v].is_finite());
                prop_assert!(dist[v] <= levels[v] as f32 + 1e-4,
                    "node {}: dist {} > hops {}", v, dist[v], levels[v]);
            }
        }
    }
}

#[test]
fn katz_and_pagerank_rank_hubs_consistently() {
    // On a strongly skewed graph, both centralities must put the same
    // node first (the dominant in-degree hub).
    let g = pcpm::graph::gen::preferential_attachment(2000, 8, 1).unwrap();
    let cfg = PcpmConfig::default()
        .with_partition_bytes(1024)
        .with_iterations(30);
    let pr = pagerank(&g, &cfg).unwrap();
    let (katz, _) =
        pcpm::algos::katz_centrality(&g, &cfg, &pcpm::algos::KatzConfig::conservative(&g)).unwrap();
    let argmax = |v: &[f32]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap()
    };
    assert_eq!(argmax(&pr.scores), argmax(&katz));
}

#[test]
fn hits_authorities_correlate_with_indegree_on_bipartite_graphs() {
    // Random bipartite hub->authority graph: the most-cited authority
    // must top the authority vector.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(8);
    let n = 200u32;
    let mut b = GraphBuilder::new(n).unwrap();
    for s in 0..100u32 {
        for _ in 0..5 {
            b.add_edge(s, 100 + rng.gen_range(0u32..100)).unwrap();
        }
    }
    let g = b.build().unwrap();
    let r = pcpm::algos::hits(
        &g,
        &PcpmConfig::default().with_partition_bytes(256),
        30,
        None,
    )
    .unwrap();
    let indeg = g.in_degrees();
    let top_auth = (0..n)
        .max_by(|&a, &b| r.authorities[a as usize].total_cmp(&r.authorities[b as usize]))
        .unwrap();
    let top_indeg = (0..n).max_by_key(|&v| indeg[v as usize]).unwrap();
    // Not necessarily identical (HITS weights by hub quality), but the
    // top authority must be among the highest in-degree nodes.
    let rank_of = |v: u32| {
        let mut sorted: Vec<u32> = (0..n).collect();
        sorted.sort_by_key(|&u| std::cmp::Reverse(indeg[u as usize]));
        sorted.iter().position(|&u| u == v).unwrap()
    };
    assert!(
        rank_of(top_auth) < 20,
        "top authority has low in-degree rank"
    );
    let _ = top_indeg;
}

#[test]
fn ppr_with_distinct_seeds_produces_distinct_locality() {
    let g = pcpm::graph::gen::web_crawl(&WebConfig {
        num_nodes: 1 << 12,
        ..Default::default()
    })
    .unwrap();
    let cfg = PcpmConfig::default()
        .with_partition_bytes(1024)
        .with_iterations(30);
    let a = personalized_pagerank(&g, &[500], &cfg).unwrap();
    let b = personalized_pagerank(&g, &[3500], &cfg).unwrap();
    // Each seed dominates its own neighborhood.
    assert!(a.scores[500] > b.scores[500] * 5.0);
    assert!(b.scores[3500] > a.scores[3500] * 5.0);
}
