//! Format-axis acceptance: the three PCPM bin formats (wide, compact,
//! delta) must be interchangeable — bit-identical PageRank across
//! formats and thread counts — while the compressed formats hold
//! strictly less auxiliary memory. The format list is overridable via
//! `PCPM_TEST_FORMATS=wide,delta`, the thread list via
//! `PCPM_TEST_THREADS=1,4`.

use pcpm::core::algebra::PlusF32;
use pcpm::core::pagerank::pagerank_with_unified_engine;
use pcpm::prelude::*;

mod common;
use common::{format_matrix, thread_matrix};

fn ranks(g: &Csr, format: BinFormatKind, threads: usize) -> Vec<f32> {
    let cfg = PcpmConfig::default()
        .with_partition_bytes(64 * 4)
        .with_iterations(20)
        .with_bin_format(format)
        .with_threads(threads);
    pagerank(g, &cfg).expect("pagerank").scores
}

/// The headline acceptance bar: `DeltaPackedBins` (and compact) produce
/// bit-identical PageRank ranks to the wide format on seeded RMAT and ER
/// inputs, across threads {1, 2, 4, 8}. Real f32 PageRank — not just the
/// integer grid — because every format decodes its segments in the exact
/// same entry order, so rounding is identical.
#[test]
fn pagerank_bit_identical_across_formats_and_threads() {
    let graphs = [
        pcpm::graph::gen::rmat(&RmatConfig::graph500(10, 8, 7)).unwrap(),
        pcpm::graph::gen::erdos_renyi(900, 7200, 19).unwrap(),
    ];
    for g in &graphs {
        let want = ranks(g, BinFormatKind::Wide, 1);
        for format in format_matrix() {
            for &t in &thread_matrix() {
                assert_eq!(
                    want,
                    ranks(g, format, t),
                    "format={format} threads={t} diverged from wide@1"
                );
            }
        }
    }
}

/// At scale 12, the compressed formats must hold strictly less
/// auxiliary memory than the wide format — delta below compact below
/// wide — and report honest per-format dest-ID compression.
#[test]
fn compressed_formats_hold_less_memory_at_scale_12() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(12, 8, 42)).unwrap();
    let cfg = PcpmConfig::default().with_partition_bytes(2 * 1024);
    let report = |format: BinFormatKind| {
        Engine::<PlusF32>::builder(&g)
            .config(cfg.with_bin_format(format))
            .build()
            .expect("engine")
            .report()
    };
    let wide = report(BinFormatKind::Wide);
    let compact = report(BinFormatKind::Compact);
    let delta = report(BinFormatKind::Delta);
    assert!(
        compact.aux_memory_bytes < wide.aux_memory_bytes,
        "compact {} !< wide {}",
        compact.aux_memory_bytes,
        wide.aux_memory_bytes
    );
    assert!(
        delta.aux_memory_bytes < compact.aux_memory_bytes,
        "delta {} !< compact {}",
        delta.aux_memory_bytes,
        compact.aux_memory_bytes
    );
    assert!((wide.bin_compression.unwrap() - 1.0).abs() < 1e-12);
    assert!((compact.bin_compression.unwrap() - 2.0).abs() < 1e-12);
    assert!(delta.bin_compression.unwrap() > 2.0);
}

/// The incremental-repair path works (and stays format-agnostic) end to
/// end: apply a batch through `Engine::update` on every format, then the
/// repaired engines must still agree bit for bit — both on a raw step
/// and on a warm-started PageRank.
#[test]
fn repaired_engines_agree_across_formats() {
    use std::sync::Arc;
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(10, 8, 31)).unwrap();
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    edges.retain(|&(s, t)| !(s == 4 && t == edges_first(&g, 4)));
    edges.push((2, 700));
    edges.push((500, 3));
    edges.sort_unstable();
    edges.dedup();
    let g2 = Arc::new(Csr::from_edges(g.num_nodes(), &edges).unwrap());
    let batch = UpdateBatch::from_parts(vec![(2, 700), (500, 3)], vec![(4, edges_first(&g, 4))]);
    let cfg = PcpmConfig::default()
        .with_partition_bytes(64 * 4)
        .with_iterations(30);
    let mut outputs = Vec::new();
    for format in format_matrix() {
        let mut engine = Engine::<PlusF32>::builder(&g)
            .config(cfg.with_bin_format(format))
            .build()
            .unwrap();
        assert!(
            matches!(
                engine.update(&g2, None, &batch).unwrap(),
                UpdateOutcome::Repaired(_)
            ),
            "format {format} must repair in place"
        );
        let r = pagerank_with_unified_engine(&g2, &cfg, &mut engine, None).unwrap();
        outputs.push((format, r.scores));
    }
    for (format, scores) in &outputs[1..] {
        assert_eq!(&outputs[0].1, scores, "format {format} post-repair ranks");
    }
}

fn edges_first(g: &Csr, s: u32) -> u32 {
    g.neighbors(s).first().copied().unwrap_or(u32::MAX)
}
