//! Env-driven test matrices shared by the integration suites
//! (`kernel_agreement`, `parallel_determinism`, `bin_formats`).
//!
//! Unknown tokens are a hard failure, not a skip: a typo in a CI
//! `PCPM_TEST_FORMATS` / `PCPM_TEST_THREADS` list must fail the job
//! instead of silently shrinking the matrix to vacuity.

#![allow(dead_code)] // each test binary uses a subset of these helpers

use pcpm::prelude::{BinFormatKind, KernelKind};

/// Bin formats under test (`PCPM_TEST_FORMATS` env, e.g.
/// `PCPM_TEST_FORMATS=wide,delta`; default: all three).
pub fn format_matrix() -> Vec<BinFormatKind> {
    match std::env::var("PCPM_TEST_FORMATS") {
        Ok(v) => v
            .split(',')
            .map(|f| {
                f.trim().parse().unwrap_or_else(|_| {
                    panic!(
                        "PCPM_TEST_FORMATS: unknown format '{}' (expected wide|compact|delta)",
                        f.trim()
                    )
                })
            })
            .collect(),
        Err(_) => BinFormatKind::ALL.to_vec(),
    }
}

/// Gather kernels under test (`PCPM_TEST_KERNELS` env, e.g.
/// `PCPM_TEST_KERNELS=scalar,unrolled`; default: `auto` only — the CI
/// kernel leg widens this to the full scalar/unrolled matrix).
pub fn kernel_matrix() -> Vec<KernelKind> {
    match std::env::var("PCPM_TEST_KERNELS") {
        Ok(v) => v
            .split(',')
            .map(|k| {
                k.trim()
                    .parse()
                    .unwrap_or_else(|e| panic!("PCPM_TEST_KERNELS: {e}"))
            })
            .collect(),
        Err(_) => vec![KernelKind::Auto],
    }
}

/// Thread counts under test (`PCPM_TEST_THREADS` env, default 1,2,4,8).
pub fn thread_matrix() -> Vec<usize> {
    match std::env::var("PCPM_TEST_THREADS") {
        Ok(v) => v
            .split(',')
            .map(|t| {
                let n: usize = t.trim().parse().unwrap_or_else(|_| {
                    panic!("PCPM_TEST_THREADS: bad thread count '{}'", t.trim())
                });
                assert!(n >= 1, "PCPM_TEST_THREADS: thread count must be >= 1");
                n
            })
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}
