//! Degenerate-graph audit: zero-node and zero-edge graphs must build,
//! step, batch-step, snapshot round-trip and serve without panicking,
//! on every bin format. These are the empty-segment edge cases of the
//! bin encoders (e.g. the delta encoder's per-partition `seg_off`
//! bookkeeping) and the empty-scratch edge case of the batched SpMM
//! path, where a zero-edge update buffer must not be chunked by zero.

use pcpm::core::algebra::PlusF32;
use pcpm::prelude::*;
use std::sync::Arc;
use std::time::Duration;

mod common;
use common::format_matrix;

/// Builds a PCPM engine over `g` in `format` with tiny partitions.
fn build(g: &Arc<Csr>, format: BinFormatKind) -> Engine<PlusF32> {
    Engine::<PlusF32>::builder_shared(g)
        .partition_bytes(64)
        .bin_format(format)
        .build()
        .unwrap_or_else(|e| panic!("build {format} over {} nodes: {e}", g.num_nodes()))
}

/// Steps, batch-steps and snapshot-round-trips one engine, asserting
/// every output is the all-zero vector (no edges means no messages).
fn exercise(g: &Arc<Csr>, format: BinFormatKind) {
    let n = g.num_nodes() as usize;
    let mut e = build(g, format);
    let x: Vec<f32> = (0..n).map(|v| (v % 13) as f32).collect();
    let mut y = vec![9.0f32; n];
    e.step(&x, &mut y).unwrap();
    assert_eq!(y, vec![0.0; n], "{format}: solo step over no edges");

    // The batched path exercises per-format `gather_many_from` with
    // empty bins and an empty per-query scratch buffer.
    let xs = [x.clone(), x.clone(), x];
    let mut ys = [vec![9.0f32; n], vec![9.0; n], vec![9.0; n]];
    let x_refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
    let mut y_refs: Vec<&mut [f32]> = ys.iter_mut().map(|v| v.as_mut_slice()).collect();
    e.step_many(&x_refs, &mut y_refs).unwrap();
    for (q, y) in ys.iter().enumerate() {
        assert_eq!(y, &vec![0.0; n], "{format}: batched step query {q}");
    }

    // Snapshot round-trip: encode, rehydrate, step again.
    let snap = e.snapshot().unwrap();
    let mut e2 = SnapshotEngineBuilder::<PlusF32>::from_snapshot(snap, Duration::ZERO)
        .build()
        .unwrap_or_else(|err| panic!("{format}: rehydrate: {err}"));
    let x2: Vec<f32> = (0..n).map(|v| (v % 7) as f32).collect();
    let mut y2 = vec![9.0f32; n];
    e2.step(&x2, &mut y2).unwrap();
    assert_eq!(y2, vec![0.0; n], "{format}: step after round-trip");
}

#[test]
fn zero_edge_graph_builds_steps_and_snapshots() {
    let g = Arc::new(Csr::from_edges(5, &[]).unwrap());
    for format in format_matrix() {
        exercise(&g, format);
    }
}

#[test]
fn zero_node_graph_builds_steps_and_snapshots() {
    let g = Arc::new(Csr::from_edges(0, &[]).unwrap());
    for format in format_matrix() {
        exercise(&g, format);
    }
}

#[test]
fn degenerate_graphs_run_the_algorithm_drivers() {
    for n in [0u32, 5] {
        let g = Csr::from_edges(n, &[]).unwrap();
        for format in format_matrix() {
            let cfg = PcpmConfig::default()
                .with_partition_bytes(64)
                .with_bin_format(format)
                .with_iterations(3);
            let r = pagerank(&g, &cfg).unwrap();
            assert_eq!(
                r.scores.len(),
                n as usize,
                "{format}: pagerank over {n} nodes"
            );
            // Batched PPR over a zero-edge (but non-empty) graph: every
            // node is dangling, mass stays on the seeds.
            if n > 0 {
                let rs = pcpm::algos::personalized_pagerank_many(&g, &[vec![0], vec![1, 2]], &cfg)
                    .unwrap();
                assert_eq!(rs.len(), 2);
                for r in &rs {
                    assert_eq!(r.scores.len(), n as usize);
                }
            }
        }
    }
}

#[test]
fn degenerate_graphs_serve_without_panicking() {
    for n in [0u32, 5] {
        let g = Arc::new(Csr::from_edges(n, &[]).unwrap());
        let cfg = PcpmConfig::default()
            .with_partition_bytes(64)
            .with_iterations(3);
        let snapshot = Engine::<PlusF32>::builder_shared(&g)
            .config(cfg)
            .build()
            .unwrap()
            .snapshot()
            .unwrap();
        let server = Server::bind(
            "127.0.0.1:0",
            vec![EngineSpec::from_snapshot(
                format!("degenerate-{n}"),
                snapshot,
            )],
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let (epoch, engines) = client.health().unwrap();
        assert_eq!((epoch, engines), (0, 1));
        let qp = QueryParams {
            iterations: 3,
            damping: cfg.damping,
            tolerance: None,
            redistribute_dangling: false,
        };
        let ranks = client.pagerank(0, &qp).unwrap();
        assert_eq!(
            ranks.scores.len(),
            n as usize,
            "served pagerank over {n} nodes"
        );
        if n > 0 {
            let ppr = client.personalized_pagerank(0, &qp, &[1]).unwrap();
            assert_eq!(ppr.scores.len(), n as usize);
        }
        handle.shutdown();
        handle.join().unwrap();
    }
}
