//! End-to-end behaviors: relabeling invariance, convergence, dataset
//! stand-ins, and the paper's qualitative claims at test scale.

use pcpm::core::partition::Partitioner;
use pcpm::core::png::{EdgeView, Png};
use pcpm::graph::gen::datasets::{standin_at, Dataset};
use pcpm::graph::order::{
    apply_permutation, inverse_permutation, random_order, reorder, OrderingKind,
};
use pcpm::prelude::*;

/// PageRank commutes with relabeling: running on a permuted graph and
/// permuting back must give the original scores.
#[test]
fn pagerank_is_permutation_equivariant() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(10, 8, 17)).unwrap();
    let cfg = PcpmConfig::default()
        .with_partition_bytes(512)
        .with_iterations(10);
    let base = pagerank(&g, &cfg).unwrap().scores;

    let perm = random_order(g.num_nodes(), 5);
    let pg = apply_permutation(&g, &perm).unwrap();
    let permuted = pagerank(&pg, &cfg).unwrap().scores;
    let inv = inverse_permutation(&perm);
    for new in 0..g.num_nodes() as usize {
        let old = inv[new] as usize;
        assert!(
            (permuted[new] - base[old]).abs() < 1e-6,
            "node {old}->{new}: {} vs {}",
            permuted[new],
            base[old]
        );
    }
}

#[test]
fn tolerance_driven_run_reaches_fixed_point() {
    let g = standin_at(Dataset::Gplus, 11).unwrap();
    let cfg = PcpmConfig::default()
        .with_partition_bytes(2048)
        .with_iterations(200)
        .with_tolerance(1e-9);
    let r = pagerank(&g, &cfg).unwrap();
    assert!(r.converged, "did not converge in 200 iterations");
    // One more iteration from the fixed point changes almost nothing.
    let cfg2 = PcpmConfig::default()
        .with_partition_bytes(2048)
        .with_iterations(r.iterations + 1)
        .with_tolerance(1e-12);
    let r2 = pagerank(&g, &cfg2).unwrap();
    let drift: f64 = r
        .scores
        .iter()
        .zip(&r2.scores)
        .map(|(&a, &b)| f64::from((a - b).abs()))
        .sum();
    assert!(drift < 1e-5, "fixed point drift {drift}");
}

#[test]
fn gorder_never_hurts_compression_much() {
    // Table 6: GOrder raises r on low-locality graphs; on the web graph
    // (already local) it may dip slightly but must stay in the same
    // ballpark.
    for d in [Dataset::Gplus, Dataset::Kron, Dataset::Web] {
        let g = standin_at(d, 11).unwrap();
        let (gg, _) = reorder(&g, OrderingKind::Gorder, 0).unwrap();
        let r = |g: &Csr| {
            let parts = Partitioner::new(g.num_nodes(), 128).unwrap();
            Png::build(EdgeView::from_csr(g), parts, parts).compression_ratio()
        };
        let orig = r(&g);
        let gord = r(&gg);
        // The paper sees a mild dip on web (8.4 -> 7.83); at test scale
        // the greedy heuristic is noisier, so allow a wider band.
        assert!(
            gord > orig * 0.65,
            "{}: gorder r {} << orig {}",
            d.name(),
            gord,
            orig
        );
    }
}

#[test]
fn gorder_improves_compression_on_skewed_graphs() {
    let g = standin_at(Dataset::Twitter, 11).unwrap();
    let (gg, _) = reorder(&g, OrderingKind::Gorder, 0).unwrap();
    let r = |g: &Csr| {
        let parts = Partitioner::new(g.num_nodes(), 128).unwrap();
        Png::build(EdgeView::from_csr(g), parts, parts).compression_ratio()
    };
    assert!(
        r(&gg) > r(&g),
        "gorder should raise r on twitter: {} vs {}",
        r(&gg),
        r(&g)
    );
}

#[test]
fn web_standin_has_high_native_compression() {
    // The web stand-in must reproduce Webbase's signature: near-optimal r
    // under its original labeling (paper Table 6: r = 8.4 with deg 8.4).
    let g = standin_at(Dataset::Web, 12).unwrap();
    let r_at = |q: u32| {
        let parts = Partitioner::new(g.num_nodes(), q).unwrap();
        Png::build(EdgeView::from_csr(&g), parts, parts).compression_ratio()
    };
    let optimal =
        g.num_edges() as f64 / (0..g.num_nodes()).filter(|&v| g.out_degree(v) > 0).count() as f64;
    // At the simulated default partition the ratio must already be high,
    // and it must approach the per-node optimum as partitions grow
    // (Fig. 11's "web is flat and high" signature).
    let r_small = r_at(512);
    let r_large = r_at(4096);
    assert!(
        r_small > optimal * 0.5,
        "web r {r_small} at q=512 far from optimal {optimal}"
    );
    assert!(
        r_large > optimal * 0.75,
        "web r {r_large} at q=4096 far from optimal {optimal}"
    );
}

#[test]
fn compression_grows_with_partition_size_on_all_standins() {
    // Fig. 11 at test scale.
    for d in Dataset::ALL {
        let g = standin_at(d, 11).unwrap();
        let r_at = |q: u32| {
            let parts = Partitioner::new(g.num_nodes(), q).unwrap();
            Png::build(EdgeView::from_csr(&g), parts, parts).compression_ratio()
        };
        let small = r_at(16);
        let large = r_at(1024);
        assert!(large >= small, "{}: r {} -> {}", d.name(), small, large);
    }
}

#[test]
fn engine_reuse_across_many_iterations_is_stable() {
    // 100 SpMV rounds through one engine must not corrupt the bins.
    let g = standin_at(Dataset::Pld, 10).unwrap();
    let mut engine = Engine::<pcpm::core::algebra::PlusF32>::builder(&g)
        .partition_bytes(1024)
        .build()
        .unwrap();
    let x: Vec<f32> = (0..g.num_nodes())
        .map(|v| (v as f32 + 1.0).recip())
        .collect();
    let mut first = vec![0.0f32; g.num_nodes() as usize];
    engine.step(&x, &mut first).unwrap();
    let mut y = vec![0.0f32; g.num_nodes() as usize];
    for _ in 0..100 {
        engine.step(&x, &mut y).unwrap();
    }
    assert_eq!(first, y);
}

#[test]
fn preprocess_time_is_recorded() {
    let g = standin_at(Dataset::Kron, 11).unwrap();
    let engine = Engine::<pcpm::core::algebra::PlusF32>::builder(&g)
        .partition_bytes(1024)
        .build()
        .unwrap();
    let report = engine.report();
    assert!(report.preprocess.as_nanos() > 0);
    assert_eq!(report.backend, "pcpm");
}
