//! Cross-kernel agreement: every parallel kernel in the workspace must
//! compute the same PageRank vector as the serial f64 oracle, on
//! arbitrary graphs and configurations (property-based).

use pcpm::core::algebra::{MinLabel, MinPlusF32, PlusF32};
use pcpm::core::engine::{GatherKind, ScatterKind};
use pcpm::core::pagerank::{pagerank_with_variant, PcpmVariant};
use pcpm::prelude::*;
use proptest::prelude::*;

mod common;
use common::{format_matrix, kernel_matrix};

/// The unified-API configurations the backend-agreement matrix covers:
/// one PCPM engine per bin format (wide / compact / delta) crossed with
/// every gather kernel under test (`PCPM_TEST_KERNELS`), PCPM with
/// CSR-traversal scatter, and the pull / push / edge-centric dataplanes,
/// all through the `Backend` trait behind `Engine`.
fn matrix_engines<A: pcpm::core::algebra::Algebra>(
    g: &Csr,
    weights: Option<&EdgeWeights>,
    q_bytes: usize,
) -> Vec<(String, Engine<A>)> {
    let build = |label: String,
                 f: &dyn Fn(EngineBuilder<'_, A>) -> EngineBuilder<'_, A>|
     -> (String, Engine<A>) {
        let mut b = Engine::<A>::builder(g).partition_bytes(q_bytes);
        if let Some(w) = weights {
            b = b.weights(w);
        }
        let e = f(b).build().unwrap_or_else(|e| panic!("{label}: {e}"));
        (label, e)
    };
    let mut engines: Vec<(String, Engine<A>)> = Vec::new();
    for format in format_matrix() {
        for kernel in kernel_matrix() {
            engines.push(build(format!("pcpm_{format}_{kernel}"), &move |b| {
                b.bin_format(format).kernel(kernel)
            }));
        }
    }
    engines.extend([
        build("pcpm_csr_traversal".to_string(), &|b| {
            b.scatter(ScatterKind::CsrTraversal)
        }),
        build("pull".to_string(), &|b| b.backend(BackendKind::Pull)),
        build("push".to_string(), &|b| b.backend(BackendKind::Push)),
        build("edge_centric".to_string(), &|b| {
            b.backend(BackendKind::EdgeCentric)
        }),
    ]);
    engines
}

/// One SpMV round on every backend must produce identical results.
/// Integer-valued inputs (and eighth-grain weights) keep every f32 sum
/// exactly representable, so the assertion is bit-exact equality even
/// though the backends accumulate in different orders.
fn assert_backend_matrix_agrees(g: &Csr, q_bytes: usize) {
    let n = g.num_nodes() as usize;
    // Unweighted, (+, x): all six against the serial reference.
    let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 13) as f32).collect();
    let mut want = vec![0.0f32; n];
    for (s, t) in g.edges() {
        want[t as usize] += x[s as usize];
    }
    for (label, mut engine) in matrix_engines::<PlusF32>(g, None, q_bytes) {
        let mut y = vec![0.0f32; n];
        engine.step(&x, &mut y).unwrap();
        assert_eq!(y, want, "{label} disagrees on unweighted SpMV");
    }

    // Weighted (min, +): exact grid weights, cross-backend equality.
    let w = EdgeWeights::new(
        g,
        (0..g.num_edges())
            .map(|i| ((i % 8) + 1) as f32 / 8.0)
            .collect(),
    )
    .unwrap();
    let xd: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 7) as f32).collect();
    let mut outputs = Vec::new();
    for (label, mut engine) in matrix_engines::<MinPlusF32>(g, Some(&w), q_bytes) {
        let mut y = vec![0.0f32; n];
        engine.step(&xd, &mut y).unwrap();
        outputs.push((label, y));
    }
    for (label, y) in &outputs[1..] {
        assert_eq!(&outputs[0].1, y, "{label} disagrees on weighted min-plus");
    }

    // Integer min-label algebra: exact by construction.
    let xl: Vec<u32> = (0..g.num_nodes()).collect();
    let mut labels = Vec::new();
    for (label, mut engine) in matrix_engines::<MinLabel>(g, None, q_bytes) {
        let mut y = vec![0u32; n];
        engine.step(&xl, &mut y).unwrap();
        labels.push((label, y));
    }
    for (label, y) in &labels[1..] {
        assert_eq!(&labels[0].1, y, "{label} disagrees on min-label");
    }
}

/// `step_many` must be bit-identical to the same number of independent
/// `step` calls, on every engine in the matrix: the PCPM formats take
/// the batched SpMM gather (each destID segment decoded once, applied
/// to every query), the other dataplanes take the default sequential
/// fallback — either way the contract is exact equality on these
/// integer-grid inputs.
fn assert_step_many_matches_steps(g: &Csr, q_bytes: usize) {
    let n = g.num_nodes() as usize;
    let xs: Vec<Vec<f32>> = (0..6u32)
        .map(|q| (0..g.num_nodes()).map(|v| ((v + q) % 13) as f32).collect())
        .collect();

    // Unweighted (+, x).
    for (label, mut engine) in matrix_engines::<PlusF32>(g, None, q_bytes) {
        let mut solo = Vec::new();
        for x in &xs {
            let mut y = vec![0.0f32; n];
            engine.step(x, &mut y).unwrap();
            solo.push(y);
        }
        let mut batched: Vec<Vec<f32>> = vec![vec![0.0f32; n]; xs.len()];
        let x_refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
        let mut y_refs: Vec<&mut [f32]> = batched.iter_mut().map(|y| y.as_mut_slice()).collect();
        engine.step_many(&x_refs, &mut y_refs).unwrap();
        assert_eq!(batched, solo, "{label}: step_many vs solo steps");
    }

    // Weighted (min, +): the batched gather must thread the weight
    // stream identically for every query.
    let w = EdgeWeights::new(
        g,
        (0..g.num_edges())
            .map(|i| ((i % 8) + 1) as f32 / 8.0)
            .collect(),
    )
    .unwrap();
    for (label, mut engine) in matrix_engines::<MinPlusF32>(g, Some(&w), q_bytes) {
        let mut solo = Vec::new();
        for x in &xs {
            let mut y = vec![0.0f32; n];
            engine.step(x, &mut y).unwrap();
            solo.push(y);
        }
        let mut batched: Vec<Vec<f32>> = vec![vec![0.0f32; n]; xs.len()];
        let x_refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
        let mut y_refs: Vec<&mut [f32]> = batched.iter_mut().map(|y| y.as_mut_slice()).collect();
        engine.step_many(&x_refs, &mut y_refs).unwrap();
        assert_eq!(batched, solo, "{label}: weighted step_many vs solo steps");
    }
}

#[test]
fn step_many_matches_independent_steps_across_backends() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 13)).unwrap();
    for q_bytes in [64 * 4, 1024 * 4] {
        assert_step_many_matches_steps(&g, q_bytes);
    }
    let g = pcpm::graph::gen::erdos_renyi(400, 3200, 17).unwrap();
    assert_step_many_matches_steps(&g, 32 * 4);
}

#[test]
fn step_many_rejects_mismatched_batches() {
    let g = pcpm::graph::gen::erdos_renyi(50, 200, 5).unwrap();
    let mut e = Engine::<PlusF32>::builder(&g)
        .partition_bytes(64 * 4)
        .build()
        .unwrap();
    let x = vec![0.0f32; 50];
    let mut y0 = [0.0f32; 50];
    let mut y1 = [0.0f32; 50];
    // One x, two ys: rejected, not silently truncated.
    assert!(e.step_many(&[&x], &mut [&mut y0[..], &mut y1[..]]).is_err());
    // Wrong-length output vector: rejected per query.
    let mut short = [0.0f32; 49];
    assert!(e.step_many(&[&x], &mut [&mut short[..]]).is_err());
    // The empty batch is a no-op, not an error.
    assert!(e.step_many(&[], &mut []).is_ok());
}

#[test]
fn backend_agreement_matrix_on_er() {
    for (nodes, edges, seed) in [(300u32, 2400u64, 8u64), (512, 4000, 21)] {
        let g = pcpm::graph::gen::erdos_renyi(nodes, edges, seed).unwrap();
        for q_bytes in [32 * 4, 200 * 4] {
            assert_backend_matrix_agrees(&g, q_bytes);
        }
    }
}

#[test]
fn backend_agreement_matrix_on_rmat() {
    for seed in [3u64, 77] {
        let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, seed)).unwrap();
        for q_bytes in [64 * 4, 1024 * 4] {
            assert_backend_matrix_agrees(&g, q_bytes);
        }
    }
}

#[test]
fn baseline_runner_backends_join_the_matrix() {
    // The pcpm-baselines Backend impls (BVGAS, grid, PDPR runner,
    // edge-centric runner) plug in through Engine::from_backend and must
    // agree with the core PCPM backend bit-exactly on integer inputs.
    use pcpm::baselines::{bvgas_engine, edge_centric_engine, grid_engine, pdpr_engine};
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 55)).unwrap();
    let cfg = PcpmConfig::default().with_partition_bytes(64 * 4);
    let n = g.num_nodes() as usize;
    let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 11) as f32).collect();
    let mut want = vec![0.0f32; n];
    let mut pcpm_engine = Engine::<PlusF32>::builder(&g).config(cfg).build().unwrap();
    pcpm_engine.step(&x, &mut want).unwrap();
    for engine in [
        bvgas_engine(&g, &cfg).unwrap(),
        grid_engine(&g, &cfg).unwrap(),
        pdpr_engine(&g, &cfg).unwrap(),
        edge_centric_engine(&g, &cfg).unwrap(),
    ] {
        let mut engine = engine;
        let name = engine.report().backend;
        let mut y = vec![0.0f32; n];
        engine.step(&x, &mut y).unwrap();
        assert_eq!(y, want, "baseline backend {name}");
    }
}

/// Random graph strategy: up to 120 nodes, up to 600 edges.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (2u32..120).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..600).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n).expect("builder");
            b.extend(edges);
            b.build().expect("build")
        })
    })
}

fn check_against_oracle(g: &Csr, cfg: &PcpmConfig, scores: &[f32], label: &str) {
    let oracle = serial_pagerank(g, cfg);
    let scale = oracle.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    for (i, (&a, &b)) in scores.iter().zip(&oracle).enumerate() {
        prop_assert_with(
            (f64::from(a) - b).abs() <= 2e-3 * scale,
            &format!("{label}: node {i}: {a} vs {b}"),
        );
    }
}

/// Local assert that plays well inside plain #[test] fns too.
fn prop_assert_with(cond: bool, msg: &str) {
    assert!(cond, "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pcpm_matches_oracle(g in arb_graph(), q in 1u32..64, iters in 1usize..8) {
        let cfg = PcpmConfig::default()
            .with_partition_bytes(q as usize * 4)
            .with_iterations(iters);
        let r = pagerank(&g, &cfg).unwrap();
        check_against_oracle(&g, &cfg, &r.scores, "pcpm");
    }

    #[test]
    fn all_pcpm_variants_identical(g in arb_graph(), q in 1u32..64) {
        let cfg = PcpmConfig::default().with_partition_bytes(q as usize * 4).with_iterations(4);
        let base = pagerank(&g, &cfg).unwrap().scores;
        for scatter in [ScatterKind::Png, ScatterKind::CsrTraversal] {
            for gather in [GatherKind::BranchAvoiding, GatherKind::Branchy] {
                let r = pagerank_with_variant(&g, &cfg, PcpmVariant { scatter, gather }).unwrap();
                prop_assert_eq!(&base, &r.scores);
            }
        }
    }

    #[test]
    fn pdpr_matches_oracle(g in arb_graph(), iters in 1usize..8) {
        let cfg = PcpmConfig::default().with_iterations(iters);
        let r = pdpr(&g, &cfg).unwrap();
        check_against_oracle(&g, &cfg, &r.scores, "pdpr");
    }

    #[test]
    fn bvgas_matches_oracle(g in arb_graph(), q in 1u32..64, iters in 1usize..6) {
        let cfg = PcpmConfig::default()
            .with_partition_bytes(q as usize * 4)
            .with_iterations(iters);
        let r = bvgas(&g, &cfg).unwrap();
        check_against_oracle(&g, &cfg, &r.scores, "bvgas");
    }

    #[test]
    fn push_matches_oracle(g in arb_graph(), iters in 1usize..6) {
        let cfg = PcpmConfig::default().with_iterations(iters);
        let r = push_pagerank(&g, &cfg).unwrap();
        check_against_oracle(&g, &cfg, &r.scores, "push");
    }

    #[test]
    fn dangling_redistribution_conserves_mass_everywhere(g in arb_graph()) {
        let mut cfg = PcpmConfig::default().with_iterations(15);
        cfg.redistribute_dangling = true;
        for (label, r) in [
            ("pcpm", pagerank(&g, &cfg).unwrap()),
            ("pdpr", pdpr(&g, &cfg).unwrap()),
            ("bvgas", bvgas(&g, &cfg).unwrap()),
        ] {
            let mass = r.mass();
            prop_assert!((mass - 1.0).abs() < 1e-2, "{} mass {}", label, mass);
        }
    }
}

#[test]
fn four_kernels_agree_on_standins() {
    for d in pcpm::graph::gen::Dataset::ALL {
        let g = pcpm::graph::gen::datasets::standin_at(d, 11).unwrap();
        let cfg = PcpmConfig::default()
            .with_partition_bytes(2048)
            .with_iterations(10);
        let pc = pagerank(&g, &cfg).unwrap().scores;
        let pd = pdpr(&g, &cfg).unwrap().scores;
        let bv = bvgas(&g, &cfg).unwrap().scores;
        let ps = push_pagerank(&g, &cfg).unwrap().scores;
        for i in 0..g.num_nodes() as usize {
            assert!(
                (pc[i] - pd[i]).abs() < 1e-5,
                "{}: pcpm vs pdpr node {i}",
                d.name()
            );
            assert!(
                (pc[i] - bv[i]).abs() < 1e-5,
                "{}: pcpm vs bvgas node {i}",
                d.name()
            );
            assert!(
                (pc[i] - ps[i]).abs() < 1e-5,
                "{}: pcpm vs push node {i}",
                d.name()
            );
        }
    }
}

#[test]
fn ranking_is_stable_across_kernels() {
    // The induced top-20 ranking (not just the values) must agree.
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(11, 12, 9)).unwrap();
    let cfg = PcpmConfig::default()
        .with_partition_bytes(1024)
        .with_iterations(20);
    let top = |scores: &[f32]| -> Vec<u32> {
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]));
        idx.truncate(20);
        idx
    };
    let pc = top(&pagerank(&g, &cfg).unwrap().scores);
    let pd = top(&pdpr(&g, &cfg).unwrap().scores);
    assert_eq!(pc, pd);
}
