//! Cross-kernel agreement: every parallel kernel in the workspace must
//! compute the same PageRank vector as the serial f64 oracle, on
//! arbitrary graphs and configurations (property-based).

use pcpm::core::engine::{GatherKind, ScatterKind};
use pcpm::core::pagerank::{pagerank_with_variant, PcpmVariant};
use pcpm::prelude::*;
use proptest::prelude::*;

/// Random graph strategy: up to 120 nodes, up to 600 edges.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (2u32..120).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..600).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n).expect("builder");
            b.extend(edges);
            b.build().expect("build")
        })
    })
}

fn check_against_oracle(g: &Csr, cfg: &PcpmConfig, scores: &[f32], label: &str) {
    let oracle = serial_pagerank(g, cfg);
    let scale = oracle.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    for (i, (&a, &b)) in scores.iter().zip(&oracle).enumerate() {
        prop_assert_with(
            (f64::from(a) - b).abs() <= 2e-3 * scale,
            &format!("{label}: node {i}: {a} vs {b}"),
        );
    }
}

/// Local assert that plays well inside plain #[test] fns too.
fn prop_assert_with(cond: bool, msg: &str) {
    assert!(cond, "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pcpm_matches_oracle(g in arb_graph(), q in 1u32..64, iters in 1usize..8) {
        let cfg = PcpmConfig::default()
            .with_partition_bytes(q as usize * 4)
            .with_iterations(iters);
        let r = pagerank(&g, &cfg).unwrap();
        check_against_oracle(&g, &cfg, &r.scores, "pcpm");
    }

    #[test]
    fn all_pcpm_variants_identical(g in arb_graph(), q in 1u32..64) {
        let cfg = PcpmConfig::default().with_partition_bytes(q as usize * 4).with_iterations(4);
        let base = pagerank(&g, &cfg).unwrap().scores;
        for scatter in [ScatterKind::Png, ScatterKind::CsrTraversal] {
            for gather in [GatherKind::BranchAvoiding, GatherKind::Branchy] {
                let r = pagerank_with_variant(&g, &cfg, PcpmVariant { scatter, gather }).unwrap();
                prop_assert_eq!(&base, &r.scores);
            }
        }
    }

    #[test]
    fn pdpr_matches_oracle(g in arb_graph(), iters in 1usize..8) {
        let cfg = PcpmConfig::default().with_iterations(iters);
        let r = pdpr(&g, &cfg).unwrap();
        check_against_oracle(&g, &cfg, &r.scores, "pdpr");
    }

    #[test]
    fn bvgas_matches_oracle(g in arb_graph(), q in 1u32..64, iters in 1usize..6) {
        let cfg = PcpmConfig::default()
            .with_partition_bytes(q as usize * 4)
            .with_iterations(iters);
        let r = bvgas(&g, &cfg).unwrap();
        check_against_oracle(&g, &cfg, &r.scores, "bvgas");
    }

    #[test]
    fn push_matches_oracle(g in arb_graph(), iters in 1usize..6) {
        let cfg = PcpmConfig::default().with_iterations(iters);
        let r = push_pagerank(&g, &cfg).unwrap();
        check_against_oracle(&g, &cfg, &r.scores, "push");
    }

    #[test]
    fn dangling_redistribution_conserves_mass_everywhere(g in arb_graph()) {
        let mut cfg = PcpmConfig::default().with_iterations(15);
        cfg.redistribute_dangling = true;
        for (label, r) in [
            ("pcpm", pagerank(&g, &cfg).unwrap()),
            ("pdpr", pdpr(&g, &cfg).unwrap()),
            ("bvgas", bvgas(&g, &cfg).unwrap()),
        ] {
            let mass = r.mass();
            prop_assert!((mass - 1.0).abs() < 1e-2, "{} mass {}", label, mass);
        }
    }
}

#[test]
fn four_kernels_agree_on_standins() {
    for d in pcpm::graph::gen::Dataset::ALL {
        let g = pcpm::graph::gen::datasets::standin_at(d, 11).unwrap();
        let cfg = PcpmConfig::default()
            .with_partition_bytes(2048)
            .with_iterations(10);
        let pc = pagerank(&g, &cfg).unwrap().scores;
        let pd = pdpr(&g, &cfg).unwrap().scores;
        let bv = bvgas(&g, &cfg).unwrap().scores;
        let ps = push_pagerank(&g, &cfg).unwrap().scores;
        for i in 0..g.num_nodes() as usize {
            assert!(
                (pc[i] - pd[i]).abs() < 1e-5,
                "{}: pcpm vs pdpr node {i}",
                d.name()
            );
            assert!(
                (pc[i] - bv[i]).abs() < 1e-5,
                "{}: pcpm vs bvgas node {i}",
                d.name()
            );
            assert!(
                (pc[i] - ps[i]).abs() < 1e-5,
                "{}: pcpm vs push node {i}",
                d.name()
            );
        }
    }
}

#[test]
fn ranking_is_stable_across_kernels() {
    // The induced top-20 ranking (not just the values) must agree.
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(11, 12, 9)).unwrap();
    let cfg = PcpmConfig::default()
        .with_partition_bytes(1024)
        .with_iterations(20);
    let top = |scores: &[f32]| -> Vec<u32> {
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]));
        idx.truncate(20);
        idx
    };
    let pc = top(&pagerank(&g, &cfg).unwrap().scores);
    let pd = top(&pdpr(&g, &cfg).unwrap().scores);
    assert_eq!(pc, pd);
}
