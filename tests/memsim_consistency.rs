//! Consistency between the traffic replays and the paper's closed-form
//! models, plus the qualitative cross-method claims of §4 and §5.

use pcpm::memsim::model::{bvgas_comm, pcpm_comm, pdpr_comm, ModelParams};
use pcpm::memsim::{replay_bvgas, replay_pcpm, replay_pdpr, CacheConfig};
use pcpm::prelude::*;

fn big_cache() -> CacheConfig {
    CacheConfig {
        capacity: 32 * 1024 * 1024,
        line: 64,
        ways: 16,
    }
}

fn small_cache() -> CacheConfig {
    CacheConfig {
        capacity: 32 * 1024,
        line: 64,
        ways: 16,
    }
}

#[test]
fn replay_tracks_bvgas_model_within_few_percent() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(13, 12, 5)).unwrap();
    let p = ModelParams::paper(f64::from(g.num_nodes()), g.num_edges() as f64, 16.0);
    let replay = replay_bvgas(&g, 512, 32, big_cache());
    let model = bvgas_comm(&p);
    let rel = (replay.total_bytes() as f64 - model).abs() / model;
    assert!(
        rel < 0.05,
        "replay {} vs model {} (rel {rel:.3})",
        replay.total_bytes(),
        model
    );
}

#[test]
fn replay_tracks_pcpm_model_within_few_percent() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(13, 12, 6)).unwrap();
    let q = 512u32;
    let parts = pcpm::core::partition::Partitioner::new(g.num_nodes(), q).unwrap();
    let png = pcpm::core::png::Png::build(pcpm::core::png::EdgeView::from_csr(&g), parts, parts);
    let k = f64::from(parts.num_partitions());
    let p = ModelParams::paper(f64::from(g.num_nodes()), g.num_edges() as f64, k);
    let replay = pcpm::memsim::replay::replay_pcpm_png(&g, &png, big_cache());
    let model = pcpm_comm(&p, png.compression_ratio());
    let rel = (replay.total_bytes() as f64 - model).abs() / model;
    assert!(
        rel < 0.05,
        "replay {} vs model {} (rel {rel:.3})",
        replay.total_bytes(),
        model
    );
}

#[test]
fn replay_tracks_pdpr_model_given_measured_cmr() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(13, 12, 7)).unwrap();
    let (replay, cmr) = replay_pdpr(&g, small_cache());
    let p = ModelParams::paper(f64::from(g.num_nodes()), g.num_edges() as f64, 1.0);
    let model = pdpr_comm(&p, cmr);
    let rel = (replay.total_bytes() as f64 - model).abs() / model;
    // The model charges a full line per miss; the replay agrees by
    // construction, so only line-granularity slack remains.
    assert!(
        rel < 0.10,
        "replay {} vs model {} (rel {rel:.3})",
        replay.total_bytes(),
        model
    );
}

#[test]
fn crossover_claim_pcpm_wins_where_model_says_so() {
    // §4 Eq. 7: on a skewed graph whose cmr is far above (di+2dv)/(r·l),
    // PCPM must move fewer bytes than PDPR.
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(14, 16, 8)).unwrap();
    let (pd, cmr) = replay_pdpr(&g, small_cache());
    let pc = replay_pcpm(&g, 512, small_cache());
    let parts = pcpm::core::partition::Partitioner::new(g.num_nodes(), 512).unwrap();
    let png = pcpm::core::png::Png::build(pcpm::core::png::EdgeView::from_csr(&g), parts, parts);
    let p = ModelParams::paper(f64::from(g.num_nodes()), g.num_edges() as f64, 1.0);
    let threshold = pcpm::memsim::model::pcpm_crossover_cmr(&p, png.compression_ratio());
    assert!(
        cmr > threshold,
        "test premise broken: cmr {cmr} <= threshold {threshold}"
    );
    assert!(pc.total_bytes() < pd.total_bytes());
}

#[test]
fn high_locality_graph_favors_pdpr_over_bvgas() {
    // §5.3.1: BVGAS loses to PDPR on the high-locality web graph.
    let g = pcpm::graph::gen::web_crawl(&pcpm::graph::gen::WebConfig {
        num_nodes: 1 << 14,
        ..Default::default()
    })
    .unwrap();
    let (pd, _) = replay_pdpr(&g, small_cache());
    let bv = replay_bvgas(&g, 512, 32, small_cache());
    assert!(
        pd.total_bytes() < bv.total_bytes(),
        "pdpr {} vs bvgas {}",
        pd.total_bytes(),
        bv.total_bytes()
    );
}

#[test]
fn pcpm_traffic_u_shape_over_partition_size() {
    // Fig. 12: traffic decreases with partition size, then rises once the
    // partition outgrows the cache.
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(14, 16, 9)).unwrap();
    let cache = CacheConfig {
        capacity: 16 * 1024,
        line: 64,
        ways: 16,
    };
    let traffic: Vec<f64> = [64u32, 512, 4096, 16384]
        .iter()
        .map(|&q| replay_pcpm(&g, q, cache).bytes_per_edge(g.num_edges()))
        .collect();
    assert!(traffic[1] < traffic[0], "no initial decrease: {traffic:?}");
    assert!(
        traffic[3] > traffic[1],
        "no cache-thrash increase: {traffic:?}"
    );
}

#[test]
fn random_access_ordering_pcpm_lt_bvgas_lt_pdpr() {
    // §4.1 comparison on a low-locality graph.
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(14, 16, 10)).unwrap();
    let (pd, _) = replay_pdpr(&g, small_cache());
    let bv = replay_bvgas(&g, 512, 32, small_cache());
    let pc = replay_pcpm(&g, 512, small_cache());
    assert!(pc.random_accesses < bv.random_accesses);
    assert!(bv.random_accesses < pd.random_accesses);
}

#[test]
fn energy_ordering_matches_traffic_ordering() {
    use pcpm::memsim::energy::energy_per_edge_uj;
    // Values (128 KB) must exceed the 32 KB cache for PDPR's random reads
    // to cost anything — the regime the paper's datasets live in.
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(15, 16, 11)).unwrap();
    let m = g.num_edges();
    let (pd, _) = replay_pdpr(&g, small_cache());
    let bv = replay_bvgas(&g, 512, 32, small_cache());
    let pc = replay_pcpm(&g, 512, small_cache());
    let (e_pd, e_bv, e_pc) = (
        energy_per_edge_uj(&pd, m),
        energy_per_edge_uj(&bv, m),
        energy_per_edge_uj(&pc, m),
    );
    assert!(e_pc < e_bv, "pcpm {e_pc} vs bvgas {e_bv}");
    assert!(e_pc < e_pd, "pcpm {e_pc} vs pdpr {e_pd}");
}
