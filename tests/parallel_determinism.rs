//! Thread-count determinism: every backend's `step` (and the streaming
//! repair path) must produce bit-identical output on 1, 2, 4 and 8
//! threads. This extends the `kernel_agreement` matrix along the thread
//! axis using the same seeded generators and the same integer-grid
//! inputs (exact in f32, so the assertion is bit-exact equality even
//! though thread count changes which worker computes what).
//!
//! The thread list is overridable for CI sweeps:
//! `PCPM_TEST_THREADS=1,4 cargo test --test parallel_determinism`, the
//! PCPM bin-format list via `PCPM_TEST_FORMATS=wide,delta`, and the
//! gather-kernel list via `PCPM_TEST_KERNELS=scalar,unrolled`.

use pcpm::core::algebra::{MinLabel, PlusF32};
use pcpm::core::engine::ScatterKind;
use pcpm::prelude::*;
use std::sync::Arc;

mod common;
use common::{format_matrix, kernel_matrix, thread_matrix};

/// Exact integer-valued input (as in kernel_agreement): every f32 sum of
/// these is exactly representable, so reduction order cannot matter.
fn int_x(n: u32) -> Vec<f32> {
    (0..n).map(|v| (v % 13) as f32).collect()
}

/// Engine configurations spanning every built-in dataplane plus the
/// PCPM ablation variants, built at an explicit thread count.
fn engines_at(g: &Csr, threads: usize, q_bytes: usize) -> Vec<(String, Engine<PlusF32>)> {
    let mut engines: Vec<(String, Engine<PlusF32>)> = Vec::new();
    for kind in BackendKind::ALL {
        let e = Engine::<PlusF32>::builder(g)
            .partition_bytes(q_bytes)
            .backend(kind)
            .threads(threads)
            .build()
            .unwrap();
        engines.push((format!("{}@{threads}", kind.name()), e));
    }
    for format in format_matrix() {
        for kernel in kernel_matrix() {
            if format == BinFormatKind::Wide && kernel == KernelKind::Auto {
                continue; // BackendKind::Pcpm above already covers wide@auto.
            }
            engines.push((
                format!("pcpm_{format}_{kernel}@{threads}"),
                Engine::<PlusF32>::builder(g)
                    .partition_bytes(q_bytes)
                    .bin_format(format)
                    .kernel(kernel)
                    .threads(threads)
                    .build()
                    .unwrap(),
            ));
        }
    }
    engines.push((
        format!("pcpm_csr_traversal@{threads}"),
        Engine::<PlusF32>::builder(g)
            .partition_bytes(q_bytes)
            .scatter(ScatterKind::CsrTraversal)
            .threads(threads)
            .build()
            .unwrap(),
    ));
    engines
}

/// One step per engine config at `threads`, outputs in config order.
fn step_outputs(g: &Csr, threads: usize, q_bytes: usize) -> Vec<(String, Vec<f32>)> {
    let x = int_x(g.num_nodes());
    let n = g.num_nodes() as usize;
    engines_at(g, threads, q_bytes)
        .into_iter()
        .map(|(label, mut e)| {
            let mut y = vec![0.0f32; n];
            e.step(&x, &mut y).unwrap();
            (label, y)
        })
        .collect()
}

#[test]
fn step_bit_identical_across_thread_counts() {
    let graphs = [
        pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 3)).unwrap(),
        pcpm::graph::gen::erdos_renyi(700, 5600, 11).unwrap(),
    ];
    for g in &graphs {
        for q_bytes in [64 * 4, 200 * 4] {
            let baseline = step_outputs(g, 1, q_bytes);
            for &t in &thread_matrix()[1..] {
                let got = step_outputs(g, t, q_bytes);
                for ((l1, y1), (lt, yt)) in baseline.iter().zip(&got) {
                    assert_eq!(y1, yt, "{lt} differs from 1-thread {l1}");
                }
            }
        }
    }
}

/// One batched `step_many` per engine config at `threads`, outputs in
/// config order. Q = 4 distinct integer-grid inputs per batch.
fn step_many_outputs(g: &Csr, threads: usize, q_bytes: usize) -> Vec<(String, Vec<Vec<f32>>)> {
    let n = g.num_nodes() as usize;
    let xs: Vec<Vec<f32>> = (0..4u32)
        .map(|q| (0..g.num_nodes()).map(|v| ((v + q) % 13) as f32).collect())
        .collect();
    engines_at(g, threads, q_bytes)
        .into_iter()
        .map(|(label, mut e)| {
            let mut ys: Vec<Vec<f32>> = vec![vec![0.0f32; n]; xs.len()];
            let x_refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
            let mut y_refs: Vec<&mut [f32]> = ys.iter_mut().map(|y| y.as_mut_slice()).collect();
            e.step_many(&x_refs, &mut y_refs).unwrap();
            (label, ys)
        })
        .collect()
}

/// The batched SpMM path must be as thread-count deterministic as the
/// solo path: `step_many` at 2/4/8 threads equals the 1-thread run bit
/// for bit, on every backend and bin format — and equals Q independent
/// 1-thread `step` calls (the solo/batched agreement along the thread
/// axis).
#[test]
fn step_many_bit_identical_across_thread_counts() {
    let graphs = [
        pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 3)).unwrap(),
        pcpm::graph::gen::erdos_renyi(700, 5600, 11).unwrap(),
    ];
    for g in &graphs {
        for q_bytes in [64 * 4, 200 * 4] {
            let baseline = step_many_outputs(g, 1, q_bytes);
            // Solo/batched agreement at 1 thread.
            let n = g.num_nodes() as usize;
            for (label, mut e) in engines_at(g, 1, q_bytes) {
                for q in 0..4u32 {
                    let x: Vec<f32> = (0..g.num_nodes()).map(|v| ((v + q) % 13) as f32).collect();
                    let mut y = vec![0.0f32; n];
                    e.step(&x, &mut y).unwrap();
                    let batched = &baseline.iter().find(|(l, _)| *l == label).unwrap().1;
                    assert_eq!(
                        &batched[q as usize], &y,
                        "{label} solo vs batched query {q}"
                    );
                }
            }
            for &t in &thread_matrix()[1..] {
                let got = step_many_outputs(g, t, q_bytes);
                for ((l1, y1), (lt, yt)) in baseline.iter().zip(&got) {
                    assert_eq!(y1, yt, "step_many {lt} differs from 1-thread {l1}");
                }
            }
        }
    }
}

#[test]
fn baseline_runner_backends_bit_identical_across_thread_counts() {
    use pcpm::baselines::{bvgas_engine, edge_centric_engine, grid_engine, pdpr_engine};
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 55)).unwrap();
    let x = int_x(g.num_nodes());
    let n = g.num_nodes() as usize;
    let run_all = |threads: usize| -> Vec<(&'static str, Vec<f32>)> {
        let cfg = PcpmConfig::default()
            .with_partition_bytes(64 * 4)
            .with_threads(threads);
        [
            bvgas_engine(&g, &cfg).unwrap(),
            grid_engine(&g, &cfg).unwrap(),
            pdpr_engine(&g, &cfg).unwrap(),
            edge_centric_engine(&g, &cfg).unwrap(),
        ]
        .map(|mut e| {
            let name = e.report().backend;
            let mut y = vec![0.0f32; n];
            e.step(&x, &mut y).unwrap();
            (name, y)
        })
        .into_iter()
        .collect()
    };
    let baseline = run_all(1);
    for &t in &thread_matrix()[1..] {
        for ((name, y1), (_, yt)) in baseline.iter().zip(run_all(t)) {
            assert_eq!(y1, &yt, "baseline backend {name} at {t} threads");
        }
    }
}

#[test]
fn integer_algebra_bit_identical_across_thread_counts() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(8, 6, 11)).unwrap();
    let xl: Vec<u32> = (0..g.num_nodes()).collect();
    let n = g.num_nodes() as usize;
    let run = |threads: usize| -> Vec<Vec<u32>> {
        BackendKind::ALL
            .map(|kind| {
                let mut e = Engine::<MinLabel>::builder(&g)
                    .partition_bytes(64 * 4)
                    .backend(kind)
                    .threads(threads)
                    .build()
                    .unwrap();
                let mut y = vec![0u32; n];
                e.step(&xl, &mut y).unwrap();
                y
            })
            .into_iter()
            .collect()
    };
    let baseline = run(1);
    for &t in &thread_matrix()[1..] {
        assert_eq!(baseline, run(t), "min-label at {t} threads");
    }
}

/// The streaming repair path (PR 2) must also be thread-count
/// deterministic: update + step equals the 1-thread run bit for bit,
/// on every bin format.
#[test]
fn streaming_repair_bit_identical_across_thread_counts() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 77)).unwrap();
    let x = int_x(g.num_nodes());
    // Edit: drop the first edge of a few sources, insert a couple.
    let mut deletes = Vec::new();
    for s in [1u32, 2, 70, 400] {
        if let Some(&t) = g.neighbors(s).first() {
            deletes.push((s, t));
        }
    }
    let inserts = vec![(3u32, 400u32), (65, 9)];
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    edges.retain(|e| !deletes.contains(e));
    edges.extend_from_slice(&inserts);
    edges.sort_unstable();
    edges.dedup();
    let g2 = Arc::new(Csr::from_edges(g.num_nodes(), &edges).unwrap());
    let batch = pcpm::core::update::UpdateBatch::from_parts(inserts, deletes);

    let run = |threads: usize, format: BinFormatKind| -> Vec<f32> {
        let mut e = Engine::<PlusF32>::builder(&g)
            .partition_bytes(64 * 4)
            .bin_format(format)
            .threads(threads)
            .build()
            .unwrap();
        assert!(matches!(
            e.update(&g2, None, &batch).unwrap(),
            pcpm::core::update::UpdateOutcome::Repaired(_)
        ));
        let mut y = vec![0.0f32; g2.num_nodes() as usize];
        e.step(&x, &mut y).unwrap();
        y
    };
    for format in format_matrix() {
        let baseline = run(1, format);
        for &t in &thread_matrix()[1..] {
            assert_eq!(
                baseline,
                run(t, format),
                "repair at {t} threads, format={format}"
            );
        }
    }
}

/// Regression (the knob must never silently rot again): a 4-thread
/// engine actually spawns 4 pool workers, and a step on a graph with
/// multiple chunks actually dispatches jobs to them. Counters are
/// monotonic and process-global, so concurrent tests only push them
/// higher — the `>=` deltas stay sound.
#[test]
fn threads_knob_spawns_workers_and_dispatches_jobs() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 5)).unwrap();
    let spawned_before = rayon::diagnostics::workers_spawned();
    let mut engine = Engine::<PlusF32>::builder(&g)
        .partition_bytes(64 * 4)
        .threads(4)
        .build()
        .unwrap();
    assert!(
        rayon::diagnostics::workers_spawned() >= spawned_before + 4,
        "a 4-thread engine must spawn 4 pool workers"
    );
    let jobs_before = rayon::diagnostics::jobs_dispatched();
    let x = int_x(g.num_nodes());
    let mut y = vec![0.0f32; g.num_nodes() as usize];
    engine.step(&x, &mut y).unwrap();
    assert!(
        rayon::diagnostics::jobs_dispatched() > jobs_before,
        "a step on a 4-thread engine must dispatch work to the pool"
    );
    // Workers are spawned once per ENGINE, not once per call: 100
    // further steps on this engine spawn zero workers of their own. Any
    // spawns visible in this window come from concurrent tests building
    // their engines (a small constant each), so a bound far below the
    // old per-call churn (4 workers × 100 calls = 400) is sound.
    let spawned_before_steps = rayon::diagnostics::workers_spawned();
    for _ in 0..100 {
        engine.step(&x, &mut y).unwrap();
    }
    let churn = rayon::diagnostics::workers_spawned() - spawned_before_steps;
    assert!(
        churn < 200,
        "per-call pool churn: {churn} workers spawned across 100 steps of one engine"
    );
}

/// Regression for the per-call pool churn the baseline drivers used to
/// pay: `run_with_threads` now memoizes one shared pool per thread
/// count, so repeated driver runs (bvgas / grid / edge-centric / push /
/// pdpr) reuse workers instead of spawning `threads` new ones per call.
/// Pool identity is the churn-proof assertion (process-global spawn
/// counters also move when concurrent tests build their own engines);
/// a generous spawn bound over 50 driver runs backs it end to end.
#[test]
fn baseline_drivers_reuse_one_shared_pool() {
    let p1 = pcpm::core::config::shared_pool(3);
    let p2 = pcpm::core::config::shared_pool(3);
    assert!(
        Arc::ptr_eq(&p1, &p2),
        "shared_pool must hand out the same pool for the same thread count"
    );
    assert_eq!(p1.current_num_threads(), 3);

    let g = pcpm::graph::gen::erdos_renyi(200, 1200, 31).unwrap();
    let mut cfg = PcpmConfig::default()
        .with_partition_bytes(64 * 4)
        .with_iterations(2);
    cfg.threads = Some(3);
    // Warm the cache (the one legitimate spawn of 3 workers).
    bvgas(&g, &cfg).unwrap();
    let before = rayon::diagnostics::workers_spawned();
    for _ in 0..10 {
        bvgas(&g, &cfg).unwrap();
        push_pagerank(&g, &cfg).unwrap();
        pdpr(&g, &cfg).unwrap();
        pcpm::baselines::grid_pagerank(&g, &cfg).unwrap();
        pcpm::baselines::edge_centric(&g, &cfg).unwrap();
    }
    // 50 driver runs used to spawn 3 workers each (150+); the cached
    // pool spawns none. Concurrent tests' engine builds stay far below
    // the bound.
    let churn = rayon::diagnostics::workers_spawned() - before;
    assert!(
        churn < 100,
        "driver pool churn: {churn} workers spawned across 50 driver runs"
    );
}
