//! Property-based invariants of the PNG layout and the message bins.

use pcpm::core::bins::BinSpace;
use pcpm::core::format::{BinFormat, WideFormat};
use pcpm::core::partition::Partitioner;
use pcpm::core::png::{EdgeView, Png};
use pcpm::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2u32..150).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..800).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n).expect("builder");
            b.extend(edges);
            b.build().expect("build")
        })
    })
}

fn build_png(g: &Csr, q: u32) -> (Partitioner, Png) {
    let parts = Partitioner::new(g.num_nodes(), q).unwrap();
    (parts, Png::build(EdgeView::from_csr(g), parts, parts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edge_counts_are_conserved(g in arb_graph(), q in 1u32..80) {
        let (_, png) = build_png(&g, q);
        prop_assert_eq!(png.num_raw_edges(), g.num_edges());
        // Compressed edges: one per (node, destination-partition) pair
        // with at least one edge — recount independently.
        let parts = png.dst_parts();
        let mut expected = 0u64;
        for v in 0..g.num_nodes() {
            let mut prev = u32::MAX;
            for &t in g.neighbors(v) {
                let p = parts.partition_of(t);
                if p != prev {
                    expected += 1;
                    prev = p;
                }
            }
        }
        prop_assert_eq!(png.num_compressed_edges(), expected);
    }

    #[test]
    fn compression_ratio_bounds(g in arb_graph(), q in 1u32..80) {
        let (_, png) = build_png(&g, q);
        let r = png.compression_ratio();
        prop_assert!(r >= 1.0 - 1e-12);
        // A compressed edge covers at most q targets: r <= q. It also
        // cannot exceed the maximum out-degree.
        prop_assert!(r <= f64::from(q) + 1e-9);
        let max_deg = (0..g.num_nodes()).map(|v| g.out_degree(v)).max().unwrap_or(0);
        prop_assert!(r <= f64::from(max_deg.max(1)) + 1e-9);
    }

    #[test]
    fn rows_are_sorted_and_in_partition(g in arb_graph(), q in 1u32..80) {
        let (parts, png) = build_png(&g, q);
        for s in parts.iter() {
            let part = png.part(s);
            for p in parts.iter() {
                let row = part.row(p);
                prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row not strictly sorted");
                for &u in row {
                    prop_assert_eq!(parts.partition_of(u), s, "source outside partition");
                    // And u really has a neighbor in partition p.
                    prop_assert!(
                        g.neighbors(u).iter().any(|&t| parts.partition_of(t) == p),
                        "phantom compressed edge"
                    );
                }
            }
        }
    }

    #[test]
    fn bins_decode_back_to_adjacency(g in arb_graph(), q in 1u32..80) {
        let (parts, png) = build_png(&g, q);
        let bins: BinSpace = WideFormat::build(EdgeView::from_csr(&g), &png, None);
        let mut rebuilt: Vec<(u32, u32)> = Vec::new();
        for s in parts.iter() {
            let part = png.part(s);
            let base = png.did_region()[s as usize] as usize;
            for p in parts.iter() {
                let lo = base + part.did_off[p as usize] as usize;
                let hi = base + part.did_off[p as usize + 1] as usize;
                let rows = part.row(p);
                let mut row_idx = usize::MAX;
                for &raw in &bins.dest_ids[lo..hi] {
                    if raw & pcpm::core::MSB_FLAG != 0 {
                        row_idx = row_idx.wrapping_add(1);
                    }
                    rebuilt.push((rows[row_idx], raw & pcpm::core::ID_MASK));
                }
            }
        }
        rebuilt.sort_unstable();
        let mut original: Vec<(u32, u32)> = g.edges().collect();
        original.sort_unstable();
        prop_assert_eq!(rebuilt, original);
    }

    #[test]
    fn regions_partition_the_bins(g in arb_graph(), q in 1u32..80) {
        let (_, png) = build_png(&g, q);
        prop_assert_eq!(png.upd_region_lens().iter().sum::<usize>() as u64,
            png.num_compressed_edges());
        prop_assert_eq!(png.did_region_lens().iter().sum::<usize>() as u64,
            png.num_raw_edges());
        prop_assert!(png.upd_region().windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(png.did_region().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn spmv_linearity(g in arb_graph(), q in 1u32..80) {
        // A^T(ax + by) == a A^T x + b A^T y — exercises scatter+gather as
        // a linear operator.
        let n = g.num_nodes() as usize;
        let mut engine = Engine::<pcpm::core::algebra::PlusF32>::builder(&g)
            .partition_bytes(q as usize * 4)
            .build()
            .unwrap();
        let x: Vec<f32> = (0..n).map(|i| ((i * 7 + 1) % 13) as f32).collect();
        let y: Vec<f32> = (0..n).map(|i| ((i * 3 + 2) % 11) as f32).collect();
        let combo: Vec<f32> = x.iter().zip(&y).map(|(&a, &b)| 2.0 * a + 0.5 * b).collect();
        let mut ax = vec![0.0f32; n];
        let mut ay = vec![0.0f32; n];
        let mut ac = vec![0.0f32; n];
        engine.step(&x, &mut ax).unwrap();
        engine.step(&y, &mut ay).unwrap();
        engine.step(&combo, &mut ac).unwrap();
        for i in 0..n {
            let want = 2.0 * ax[i] + 0.5 * ay[i];
            prop_assert!((ac[i] - want).abs() <= 1e-2 * want.abs().max(1.0),
                "node {}: {} vs {}", i, ac[i], want);
        }
    }
}
