//! End-to-end tests for the `pcpm-serve` dataplane: served answers must
//! be bit-identical to the offline toolchain at every epoch, updates
//! must publish atomically, and readers must never observe a mixed
//! epoch while the writer republishes.

use pcpm::core::algebra::PlusF32;
use pcpm::core::pagerank::pagerank_with_unified_engine;
use pcpm::prelude::*;
use pcpm::serve::{ErrorCode, ServeError};
use std::sync::Arc;
use std::time::Duration;

const PARTITION_BYTES: usize = 4096;

fn test_cfg() -> PcpmConfig {
    PcpmConfig::default()
        .with_partition_bytes(PARTITION_BYTES)
        .with_iterations(20)
}

fn test_graph() -> Arc<Csr> {
    Arc::new(pcpm::graph::gen::erdos_renyi(1500, 12000, 7).unwrap())
}

fn build_snapshot(graph: &Arc<Csr>, cfg: &PcpmConfig, weights: Option<&EdgeWeights>) -> Snapshot {
    let mut b = Engine::<PlusF32>::builder_shared(graph).config(*cfg);
    if let Some(w) = weights {
        b = b.weights(w);
    }
    b.build().unwrap().snapshot().unwrap()
}

fn spawn_server(snapshot: Snapshot, workers: usize) -> pcpm::serve::ServerHandle {
    spawn_server_with(snapshot, workers, ServerConfig::default())
}

fn spawn_server_with(
    snapshot: Snapshot,
    workers: usize,
    base: ServerConfig,
) -> pcpm::serve::ServerHandle {
    let spec = EngineSpec::from_snapshot("test-engine", snapshot);
    let server = Server::bind(
        "127.0.0.1:0",
        vec![spec],
        ServerConfig {
            workers,
            threads: None,
            ..base
        },
    )
    .unwrap();
    server.spawn().unwrap()
}

fn params(cfg: &PcpmConfig) -> QueryParams {
    QueryParams {
        iterations: cfg.iterations as u32,
        damping: cfg.damping,
        tolerance: cfg.tolerance,
        redistribute_dangling: cfg.redistribute_dangling,
    }
}

/// The offline mirror of the server's update path: same `DeltaGraph`,
/// same `Engine::update`, and — like a serving worker — every query runs
/// on an engine rehydrated from the current snapshot.
struct OfflineReplayer {
    delta: DeltaGraph,
    engine: Engine<PlusF32>,
    snapshot: Snapshot,
    cfg: PcpmConfig,
}

impl OfflineReplayer {
    fn new(snapshot: Snapshot, cfg: PcpmConfig) -> Self {
        let delta = DeltaGraph::new(
            Arc::clone(snapshot.graph()),
            PcpmConfig::default()
                .with_partition_bytes(snapshot.partition_bytes())
                .partition_nodes(),
        )
        .unwrap();
        let engine =
            SnapshotEngineBuilder::<PlusF32>::from_snapshot(snapshot.clone(), Duration::ZERO)
                .build()
                .unwrap();
        Self {
            delta,
            engine,
            snapshot,
            cfg,
        }
    }

    fn apply(&mut self, batch: &UpdateBatch) {
        let stats = self.delta.apply(batch).unwrap();
        let graph = self.delta.snapshot();
        self.engine.update(&graph, None, &stats.applied).unwrap();
        self.snapshot = self.engine.snapshot().unwrap();
    }

    fn pagerank(&self) -> Vec<f32> {
        let mut engine =
            SnapshotEngineBuilder::<PlusF32>::from_snapshot(self.snapshot.clone(), Duration::ZERO)
                .build()
                .unwrap();
        let graph = Arc::clone(self.snapshot.graph());
        pagerank_with_unified_engine(&graph, &self.cfg, &mut engine, None)
            .unwrap()
            .scores
    }

    fn ppr(&self, seeds: &[u32]) -> Vec<f32> {
        let mut engine =
            SnapshotEngineBuilder::<PlusF32>::from_snapshot(self.snapshot.clone(), Duration::ZERO)
                .build()
                .unwrap();
        let graph = Arc::clone(self.snapshot.graph());
        personalized_pagerank_with_unified_engine(&graph, seeds, &self.cfg, &mut engine)
            .unwrap()
            .scores
    }
}

fn gen_batches(graph: &Csr, batches: usize, seed: u64) -> Vec<UpdateBatch> {
    gen_updates(
        graph,
        &UpdateGenConfig {
            batches,
            batch_size: 60,
            delete_frac: 0.3,
            locality: None,
            seed,
        },
    )
    .unwrap()
}

#[test]
fn served_answers_are_bit_identical_to_offline() {
    let graph = test_graph();
    let cfg = test_cfg();
    let handle = spawn_server(build_snapshot(&graph, &cfg, None), 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let (epoch, engines) = client.health().unwrap();
    assert_eq!(epoch, 0);
    assert_eq!(engines, 1);

    // PageRank: exact equality with the offline driver, not tolerance.
    let served = client.pagerank(0, &params(&cfg)).unwrap();
    let offline = pagerank(&graph, &cfg).unwrap();
    assert_eq!(served.epoch, 0);
    assert_eq!(served.iterations as usize, offline.iterations);
    assert_eq!(served.scores, offline.scores);

    // Personalized PageRank over a seed set.
    let seeds = [3u32, 99, 512];
    let served = client
        .personalized_pagerank(0, &params(&cfg), &seeds)
        .unwrap();
    let offline = personalized_pagerank(&graph, &seeds, &cfg).unwrap();
    assert_eq!(served.scores, offline.scores);

    // BFS levels.
    let (_, served_levels) = client.bfs(0, 5).unwrap();
    assert_eq!(served_levels, bfs_levels(&graph, 5, &cfg).unwrap());

    // Non-default solver knobs travel through the wire protocol.
    let mut hot = cfg;
    hot.damping = 0.6;
    hot.iterations = 7;
    let served = client.pagerank(0, &params(&hot)).unwrap();
    assert_eq!(served.scores, pagerank(&graph, &hot).unwrap().scores);

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn served_sssp_matches_offline_on_weighted_snapshot() {
    let graph = test_graph();
    let cfg = test_cfg();
    let weights = EdgeWeights::random(&graph, 11);
    let handle = spawn_server(build_snapshot(&graph, &cfg, Some(&weights)), 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let (_, served) = client.sssp(0, 5).unwrap();
    assert_eq!(served, sssp(&graph, &weights, 5, &cfg).unwrap());

    // Weighted PageRank also serves, bit-identically.
    let ranks = client.pagerank(0, &params(&cfg)).unwrap();
    assert_eq!(
        ranks.scores,
        weighted_pagerank(&graph, &weights, &cfg).unwrap().scores
    );

    // Structural updates and traversal queries are gated on weighted
    // engines with a typed error, not a panic or a wrong answer.
    for err in [
        client.bfs(0, 0).unwrap_err(),
        client
            .personalized_pagerank(0, &params(&cfg), &[1])
            .unwrap_err(),
        client.update(0, &UpdateBatch::default()).unwrap_err(),
    ] {
        match err {
            ServeError::Server { code, .. } => assert_eq!(code, ErrorCode::Unsupported),
            other => panic!("expected typed Unsupported, got {other}"),
        }
    }

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn bad_queries_get_typed_errors() {
    let graph = test_graph();
    let cfg = test_cfg();
    let handle = spawn_server(build_snapshot(&graph, &cfg, None), 1);
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown engine index.
    match client.pagerank(9, &params(&cfg)).unwrap_err() {
        ServeError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownEngine),
        other => panic!("unexpected {other}"),
    }
    // Empty seed set.
    match client
        .personalized_pagerank(0, &params(&cfg), &[])
        .unwrap_err()
    {
        ServeError::Server { code, .. } => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("unexpected {other}"),
    }
    // BFS source out of range.
    match client.bfs(0, 1_000_000).unwrap_err() {
        ServeError::Server { code, .. } => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("unexpected {other}"),
    }
    // SSSP needs weights.
    match client.sssp(0, 0).unwrap_err() {
        ServeError::Server { code, .. } => assert_eq!(code, ErrorCode::Unsupported),
        other => panic!("unexpected {other}"),
    }
    // The connection survives typed errors and the error counter shows
    // up in stats.
    let stats = client.stats().unwrap();
    let errors: u64 = stats.queries.iter().map(|q| q.errors).sum();
    assert_eq!(errors, 4);

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn updates_publish_epochs_matching_offline_replay() {
    let graph = test_graph();
    let cfg = test_cfg();
    let snapshot = build_snapshot(&graph, &cfg, None);
    let batches = gen_batches(&graph, 4, 99);

    // Offline truth: one rank vector per epoch.
    let mut replayer = OfflineReplayer::new(snapshot.clone(), cfg);
    let mut expected = vec![replayer.pagerank()];
    for b in &batches {
        replayer.apply(b);
        expected.push(replayer.pagerank());
    }
    // The updates must actually change the answer, or the test is
    // vacuous.
    assert_ne!(expected[0], expected[batches.len()]);

    let handle = spawn_server(snapshot, 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    let served = client.pagerank(0, &params(&cfg)).unwrap();
    assert_eq!(served.epoch, 0);
    assert_eq!(served.scores, expected[0]);
    for (i, b) in batches.iter().enumerate() {
        let reply = client.update(0, b).unwrap();
        assert_eq!(reply.epoch, (i + 1) as u64);
        assert!(matches!(reply.outcome, UpdateOutcome::Repaired(_)));
        assert!(reply.applied > 0);
        // The publish is visible to queries as soon as the update reply
        // arrives, and the served ranks match the offline replay at the
        // same epoch bit for bit.
        let served = client.pagerank(0, &params(&cfg)).unwrap();
        assert_eq!(served.epoch, (i + 1) as u64);
        assert_eq!(served.scores, expected[i + 1]);
    }

    handle.shutdown();
    handle.join().unwrap();
}

/// The reader/writer overlap stress: N readers hammer personalized
/// PageRank while the writer publishes a stream of update batches.
/// Every reply must carry a consistent (epoch, scores) pair — a reply
/// whose scores don't match the offline replay *at its own tagged
/// epoch* would prove a torn swap.
#[test]
fn concurrent_readers_never_observe_epoch_mixing() {
    let graph = test_graph();
    let cfg = test_cfg();
    let snapshot = build_snapshot(&graph, &cfg, None);
    let batches = gen_batches(&graph, 5, 1234);
    let seeds = [7u32, 42, 900];

    // Offline truth per epoch.
    let mut replayer = OfflineReplayer::new(snapshot.clone(), cfg);
    let mut expected = vec![replayer.ppr(&seeds)];
    for b in &batches {
        replayer.apply(b);
        expected.push(replayer.ppr(&seeds));
    }
    let expected = Arc::new(expected);

    let handle = spawn_server(snapshot, 4);
    let addr = handle.addr();
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let expected = Arc::clone(&expected);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut queries = 0u64;
                let mut epochs_seen = std::collections::BTreeSet::new();
                while !done.load(std::sync::atomic::Ordering::SeqCst) {
                    let r = client
                        .personalized_pagerank(0, &params(&cfg), &seeds)
                        .unwrap();
                    let epoch = r.epoch as usize;
                    assert!(epoch < expected.len(), "epoch {epoch} out of range");
                    assert_eq!(
                        r.scores, expected[epoch],
                        "scores do not match offline replay at their own epoch {epoch}"
                    );
                    epochs_seen.insert(r.epoch);
                    queries += 1;
                }
                (queries, epochs_seen)
            })
        })
        .collect();

    // Writer: its own connection, one batch at a time, pausing so
    // readers get queries in at several distinct epochs.
    let mut writer = Client::connect(addr).unwrap();
    for (i, b) in batches.iter().enumerate() {
        let reply = writer.update(0, b).unwrap();
        assert_eq!(reply.epoch, (i + 1) as u64);
        std::thread::sleep(Duration::from_millis(60));
    }
    done.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut total = 0;
    let mut all_epochs = std::collections::BTreeSet::new();
    for r in readers {
        let (queries, epochs) = r.join().unwrap();
        total += queries;
        all_epochs.extend(epochs);
    }
    assert!(total > 0, "readers never got a query in");
    assert!(
        all_epochs.len() >= 2,
        "readers only ever saw epochs {all_epochs:?}; no overlap was exercised"
    );

    // Post-drain: the final answer matches the offline replay exactly.
    let final_ranks = writer
        .personalized_pagerank(0, &params(&cfg), &seeds)
        .unwrap();
    assert_eq!(final_ranks.epoch, batches.len() as u64);
    assert_eq!(final_ranks.scores, expected[batches.len()]);

    handle.shutdown();
    handle.join().unwrap();
}

/// Scrape the metrics listener once, returning the raw HTTP response.
fn scrape(addr: std::net::SocketAddr) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

fn metric_value(text: &str, line_prefix: &str) -> f64 {
    text.lines()
        .find(|l| l.starts_with(line_prefix))
        .unwrap_or_else(|| panic!("no line starting with {line_prefix:?} in:\n{text}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let graph = test_graph();
    let cfg = test_cfg();
    let handle = spawn_server_with(
        build_snapshot(&graph, &cfg, None),
        2,
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
            ..ServerConfig::default()
        },
    );
    let maddr = handle.metrics_addr().expect("metrics listener bound");
    let mut client = Client::connect(handle.addr()).unwrap();

    let before = scrape(maddr);
    assert!(before.starts_with("HTTP/1.1 200 OK"));
    assert!(before.contains("Content-Type: text/plain; version=0.0.4"));
    for family in pcpm::serve::METRIC_FAMILIES {
        assert!(
            before.contains(&format!("# TYPE {family}")),
            "family {family} missing from exposition"
        );
    }
    let pr_before = metric_value(&before, "pcpm_requests_total{kind=\"pagerank\"}");

    // Traffic: two pageranks and one typed error.
    client.pagerank(0, &params(&cfg)).unwrap();
    client.pagerank(0, &params(&cfg)).unwrap();
    client.pagerank(9, &params(&cfg)).unwrap_err();

    let after = scrape(maddr);
    let pr_after = metric_value(&after, "pcpm_requests_total{kind=\"pagerank\"}");
    assert_eq!(pr_after - pr_before, 3.0);
    assert!(metric_value(&after, "pcpm_request_errors_total{kind=\"pagerank\"}") >= 1.0);
    assert!(metric_value(&after, "pcpm_connections_dispatched_total") >= 1.0);
    assert!(metric_value(&after, "pcpm_epoch") == 0.0);
    // Histogram buckets are cumulative: +Inf equals the count.
    let inf = metric_value(
        &after,
        "pcpm_request_latency_seconds_bucket{kind=\"pagerank\",le=\"+Inf\"}",
    );
    let count = metric_value(
        &after,
        "pcpm_request_latency_seconds_count{kind=\"pagerank\"}",
    );
    assert_eq!(inf, count);

    // The extended stats reply carries the queue/writer/slow fields and
    // renders through the shared human formatter.
    let stats = client.stats().unwrap();
    assert!(stats.connections_dispatched >= 1);
    let pr_row = &stats.queries[2];
    assert_eq!(pr_row.count, 3);
    assert!(pr_row.exec_us_total > 0);
    // A 20-iteration pagerank on 1500 nodes takes well over the 1 ms
    // slow threshold, so the ring must have captured it.
    assert!(stats.slow_queries.iter().any(|s| s.kind == 2));
    let human = stats.render_human();
    assert!(human.contains("pagerank"));
    assert!(human.contains("p50_us"));
    assert!(human.contains("slow queries"));

    handle.shutdown();
    handle.join().unwrap();
}

/// A storm of concurrent PPR requests with identical `QueryParams`:
/// workers may coalesce any subset of them into shared batched passes,
/// and that must be invisible — every reply equals the offline
/// single-query answer for its own seed set, bit for bit. A thread
/// with an out-of-range seed set rides along to prove one bad request
/// cannot poison the batch it lands in.
#[test]
fn coalesced_ppr_storm_matches_single_query_answers() {
    let graph = test_graph();
    let cfg = test_cfg();
    let handle = spawn_server(build_snapshot(&graph, &cfg, None), 4);
    let addr = handle.addr();

    let seed_sets: Vec<Vec<u32>> = vec![
        vec![3],
        vec![99, 512],
        vec![7],
        vec![1400, 2, 33],
        vec![512],
        vec![0, 1],
    ];
    let expected: Vec<Vec<f32>> = seed_sets
        .iter()
        .map(|s| personalized_pagerank(&graph, s, &cfg).unwrap().scores)
        .collect();

    let mut threads: Vec<_> = seed_sets
        .into_iter()
        .zip(expected)
        .map(|(seeds, want)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..4 {
                    let r = client
                        .personalized_pagerank(0, &params(&test_cfg()), &seeds)
                        .unwrap();
                    assert_eq!(r.epoch, 0);
                    assert_eq!(
                        r.scores, want,
                        "seeds {seeds:?} round {round}: coalesced reply differs from solo answer"
                    );
                }
            })
        })
        .collect();
    threads.push(std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        for _ in 0..4 {
            match client
                .personalized_pagerank(0, &params(&test_cfg()), &[1_000_000])
                .unwrap_err()
            {
                ServeError::Server { code, .. } => assert_eq!(code, ErrorCode::BadQuery),
                other => panic!("expected typed BadQuery, got {other}"),
            }
        }
    }));
    for t in threads {
        t.join().unwrap();
    }

    handle.shutdown();
    handle.join().unwrap();
}

/// A listener that accepts and then never replies must not hang the
/// client forever: with `connect_timeout`, the read fails within the
/// configured deadline.
#[test]
fn client_timeout_fires_against_unresponsive_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Keep the listener alive but never accept/reply; the OS completes
    // the TCP handshake from its backlog, so connect succeeds and the
    // hang would happen on the reply read.
    let timeout = Duration::from_millis(300);
    let mut client = Client::connect_timeout(addr, timeout).unwrap();
    let t0 = std::time::Instant::now();
    match client.health() {
        Err(ServeError::Io(e)) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "expected a timeout error, got {e:?}"
        ),
        other => panic!("expected Io timeout, got {other:?}"),
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "timeout took {elapsed:?}, configured {timeout:?}"
    );
    drop(listener);
}

/// A decodable frame header with an out-of-range length earns a typed
/// `BadFrame` error reply before the server closes the connection —
/// not a silent drop.
#[test]
fn malformed_frame_length_gets_typed_bad_frame_reply() {
    use pcpm::serve::proto::{read_frame, MAX_FRAME_BYTES};
    use pcpm::serve::Response;
    use std::io::Write;

    let graph = test_graph();
    let cfg = test_cfg();
    let handle = spawn_server(build_snapshot(&graph, &cfg, None), 1);

    for bad_len in [0u32, 1, 2, (MAX_FRAME_BYTES as u32) + 1] {
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&bad_len.to_le_bytes()).unwrap();
        stream.flush().unwrap();
        let frame = read_frame(&mut stream)
            .unwrap()
            .unwrap_or_else(|| panic!("len {bad_len}: server closed without a BadFrame reply"));
        match Response::decode(frame.kind, &frame.payload).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::BadFrame, "len {bad_len}");
                assert!(
                    message.contains("bad frame length"),
                    "len {bad_len}: message {message:?}"
                );
            }
            other => panic!(
                "len {bad_len}: expected error reply, got kind {}",
                other.kind()
            ),
        }
    }

    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn shutdown_drains_and_refuses_new_work() {
    let graph = test_graph();
    let cfg = test_cfg();
    let handle = spawn_server(build_snapshot(&graph, &cfg, None), 2);
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    assert_eq!(a.health().unwrap().0, 0);
    let epoch = b.shutdown().unwrap();
    assert_eq!(epoch, 0);
    // Existing connections are refused politely (typed error or a clean
    // close once the server drains), never a hang or a wrong answer.
    match a.health() {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
        Err(_) => {} // connection torn down by the drain — acceptable
        Ok(_) => panic!("health answered after shutdown"),
    }
    handle.join().unwrap();
}
