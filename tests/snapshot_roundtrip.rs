//! Engine-snapshot acceptance: loading a snapshot skips PNG/bin
//! construction entirely and serves **bit-identical** PageRank to the
//! cold build, across bin formats × thread counts; corrupted, truncated
//! or mismatched snapshots are rejected with typed errors (property
//! tested); the loaded engine keeps the full contract (update/repair,
//! re-snapshot, reports).

use pcpm::core::algebra::PlusF32;
use pcpm::core::pagerank::pagerank_with_unified_engine;
use pcpm::core::update::UpdateOutcome;
use pcpm::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

mod common;
use common::format_matrix;

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pcpm_snapshot_tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

fn cfg_for(format: BinFormatKind, threads: Option<usize>) -> PcpmConfig {
    let mut cfg = PcpmConfig::default()
        .with_partition_bytes(64 * 4)
        .with_iterations(15)
        .with_bin_format(format);
    cfg.threads = threads;
    cfg
}

/// The acceptance bar: snapshot-served ranks are bit-identical to the
/// cold build for every format × threads {1, 4}, and the loaded engine
/// reports that it skipped the build.
#[test]
fn loaded_engine_serves_bit_identical_pagerank() {
    let g = Arc::new(pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 77)).unwrap());
    for format in format_matrix() {
        let path = tmp_path(&format!("roundtrip-{format}.pcpmc"));
        let cfg = cfg_for(format, None);
        let mut cold = Engine::<PlusF32>::builder_shared(&g)
            .config(cfg)
            .build()
            .unwrap();
        let bytes = cold.save_snapshot(&path).unwrap();
        assert!(bytes > 0);
        let want = pagerank_with_unified_engine(&g, &cfg, &mut cold, None)
            .unwrap()
            .scores;
        for threads in [1usize, 4] {
            let mut served = EngineBuilder::<PlusF32>::from_snapshot(&path)
                .unwrap()
                .expect_config(&cfg, false)
                .unwrap()
                .expect_graph(&g)
                .unwrap()
                .threads(threads)
                .build()
                .unwrap();
            let report = served.report();
            assert!(report.loaded_from_snapshot, "format {format}");
            assert!(report.snapshot_load.is_some());
            assert_eq!(report.bin_format, Some(format.name()));
            let scores = pagerank_with_unified_engine(&g, &cfg, &mut served, None)
                .unwrap()
                .scores;
            assert_eq!(want, scores, "format {format}, {threads} threads");
        }
        // Cold engines report no snapshot involvement.
        assert!(
            !Engine::<PlusF32>::builder_shared(&g)
                .config(cfg)
                .build()
                .unwrap()
                .report()
                .loaded_from_snapshot
        );
    }
}

/// Weighted dataplanes snapshot too: the CSR-order weights and the
/// bin-order weight stream both round-trip.
#[test]
fn weighted_snapshot_round_trips() {
    let g = Arc::new(pcpm::graph::gen::erdos_renyi(300, 2400, 11).unwrap());
    let w = EdgeWeights::new(
        &g,
        (0..g.num_edges())
            .map(|i| ((i % 8) + 1) as f32 / 8.0)
            .collect(),
    )
    .unwrap();
    let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 7) as f32).collect();
    for format in format_matrix() {
        let path = tmp_path(&format!("weighted-{format}.pcpmc"));
        let cfg = cfg_for(format, None);
        let mut cold = Engine::<PlusF32>::builder_shared(&g)
            .config(cfg)
            .weights(&w)
            .build()
            .unwrap();
        cold.save_snapshot(&path).unwrap();
        let snap = Snapshot::load(&path).unwrap();
        assert!(snap.is_weighted());
        assert_eq!(snap.weights().unwrap(), w.as_slice());
        let mut served = Engine::<PlusF32>::from_snapshot(&path).unwrap();
        let n = g.num_nodes() as usize;
        let (mut ya, mut yb) = (vec![0.0f32; n], vec![0.0f32; n]);
        cold.step(&x, &mut ya).unwrap();
        served.step(&x, &mut yb).unwrap();
        assert_eq!(ya, yb, "format {format}");
        // Weighted-ness expectations are enforced.
        assert!(matches!(
            EngineBuilder::<PlusF32>::from_snapshot(&path)
                .unwrap()
                .expect_config(&cfg, false),
            Err(pcpm::core::PcpmError::Snapshot(
                SnapshotError::ConfigMismatch {
                    field: "weighted-ness"
                }
            ))
        ));
    }
}

/// A loaded engine is a full citizen: incremental repair works on it,
/// and the repaired engine can re-snapshot — the serve-update-save loop
/// a streaming deployment runs forever.
#[test]
fn loaded_engine_updates_and_resnapshots() {
    let g = Arc::new(pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 55)).unwrap());
    let x: Vec<f32> = (0..g.num_nodes()).map(|v| (v % 13) as f32).collect();
    // Edit: drop one edge, add two.
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    let removed = edges.remove(7);
    edges.extend([(3, 400), (65, 9)]);
    edges.sort_unstable();
    edges.dedup();
    let g2 = Arc::new(Csr::from_edges(g.num_nodes(), &edges).unwrap());
    let batch = UpdateBatch::from_parts(vec![(3, 400), (65, 9)], vec![removed]);

    for format in format_matrix() {
        let path = tmp_path(&format!("update-{format}.pcpmc"));
        let path2 = tmp_path(&format!("update-{format}-after.pcpmc"));
        Engine::<PlusF32>::builder_shared(&g)
            .config(cfg_for(format, None))
            .build()
            .unwrap()
            .save_snapshot(&path)
            .unwrap();
        let mut served = Engine::<PlusF32>::from_snapshot(&path).unwrap();
        assert!(matches!(
            served.update(&g2, None, &batch).unwrap(),
            UpdateOutcome::Repaired(_)
        ));
        // The post-update snapshot captures the post-update graph…
        served.save_snapshot(&path2).unwrap();
        let reloaded_snap = Snapshot::load(&path2).unwrap();
        assert_eq!(**reloaded_snap.graph(), *g2, "format {format}");
        // …and serves the post-update ranks bit-identically.
        let mut reloaded = Engine::<PlusF32>::from_snapshot(&path2).unwrap();
        let mut fresh = Engine::<PlusF32>::builder_shared(&g2)
            .config(cfg_for(format, None))
            .build()
            .unwrap();
        let n = g2.num_nodes() as usize;
        let (mut ya, mut yb, mut yc) = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
        served.step(&x, &mut ya).unwrap();
        reloaded.step(&x, &mut yb).unwrap();
        fresh.step(&x, &mut yc).unwrap();
        assert_eq!(ya, yb, "format {format}");
        assert_eq!(ya, yc, "format {format}");
    }
}

/// Snapshot retention is never a silent deep copy: a PCPM engine built
/// from a borrowed graph refuses to snapshot (typed), becomes
/// snapshotable after an update hands it an `Arc`, and the effective
/// partition size — not the raw byte count — is what `expect_config`
/// compares (bytes that round to the same q are the same layout).
#[test]
fn retention_is_shared_only_and_config_compares_effective_q() {
    let g = pcpm::graph::gen::erdos_renyi(120, 700, 3).unwrap();
    let mut engine = Engine::<PlusF32>::builder(&g)
        .partition_bytes(64 * 4)
        .build()
        .unwrap();
    assert!(matches!(
        engine.snapshot(),
        Err(pcpm::core::PcpmError::Snapshot(SnapshotError::Unsupported(
            _
        )))
    ));
    // An empty batch is a cheap no-op and does not establish retention…
    let shared = Arc::new(g.clone());
    engine
        .update(&shared, None, &UpdateBatch::default())
        .unwrap();
    assert!(engine.snapshot().is_err());
    // …but a real update passes an Arc the engine retains zero-copy.
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    edges.push((0, 99));
    edges.sort_unstable();
    edges.dedup();
    let g2 = Arc::new(Csr::from_edges(g.num_nodes(), &edges).unwrap());
    engine
        .update(&g2, None, &UpdateBatch::from_parts(vec![(0, 99)], vec![]))
        .unwrap();
    let snap = engine.snapshot().unwrap();
    assert_eq!(**snap.graph(), *g2);

    // Partition bytes that round to the same q are the same layout:
    // a cache built with --partition-bytes 10 (q = 2) must be served
    // under the exact flags that created it.
    let path = tmp_path("odd-partition-bytes.pcpmc");
    let cfg10 = PcpmConfig::default().with_partition_bytes(10);
    let small = Arc::new(pcpm::graph::gen::erdos_renyi(40, 160, 9).unwrap());
    Engine::<PlusF32>::builder_shared(&small)
        .config(cfg10)
        .build()
        .unwrap()
        .save_snapshot(&path)
        .unwrap();
    let loaded = EngineBuilder::<PlusF32>::from_snapshot(&path)
        .unwrap()
        .expect_config(&cfg10, false)
        .unwrap()
        .expect_config(&PcpmConfig::default().with_partition_bytes(8), false)
        .unwrap();
    assert!(matches!(
        loaded.expect_config(&PcpmConfig::default().with_partition_bytes(12), false),
        Err(pcpm::core::PcpmError::Snapshot(
            SnapshotError::ConfigMismatch {
                field: "partition bytes"
            }
        ))
    ));
}

/// Engines that cannot be snapshotted say so with a typed error instead
/// of writing a broken file.
#[test]
fn non_snapshotable_engines_refuse() {
    let g = pcpm::graph::gen::erdos_renyi(80, 400, 5).unwrap();
    for kind in [
        BackendKind::Pull,
        BackendKind::Push,
        BackendKind::EdgeCentric,
    ] {
        let engine = Engine::<PlusF32>::builder(&g)
            .backend(kind)
            .build()
            .unwrap();
        assert!(
            matches!(
                engine.snapshot(),
                Err(pcpm::core::PcpmError::Snapshot(SnapshotError::Unsupported(
                    _
                )))
            ),
            "backend {}",
            kind.name()
        );
    }
    // Missing file: typed I/O error, not a panic.
    assert!(matches!(
        Engine::<PlusF32>::from_snapshot(tmp_path("does-not-exist.pcpmc")),
        Err(pcpm::core::PcpmError::Snapshot(SnapshotError::Io(_)))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: NO random mutation of a valid snapshot file — byte
    /// flip, truncation, or extension — is ever accepted or panics the
    /// loader; each is rejected with a typed error.
    #[test]
    fn arbitrary_corruption_is_always_rejected(
        seed in 0u64..3,
        pos in 0u32..10_000,
        flip in 1u32..256,
        mode in 0u32..3,
    ) {
        let pos_frac = f64::from(pos) / 10_000.0;
        let flip = flip as u8;
        // One snapshot per seed (cached per run by the OS page cache;
        // cheap at this scale), cycling through the three formats.
        let format = BinFormatKind::ALL[seed as usize % 3];
        let g = Arc::new(pcpm::graph::gen::rmat(&RmatConfig::graph500(7, 6, seed)).unwrap());
        let engine = Engine::<PlusF32>::builder_shared(&g)
            .config(cfg_for(format, None))
            .build()
            .unwrap();
        let bytes = engine.snapshot().unwrap().to_bytes();
        let mutated = match mode {
            0 => {
                // Flip one byte anywhere in the file.
                let mut m = bytes.clone();
                let i = ((m.len() - 1) as f64 * pos_frac) as usize;
                m[i] ^= flip;
                m
            }
            1 => {
                // Truncate to a random prefix.
                let len = (bytes.len() as f64 * pos_frac) as usize;
                bytes[..len].to_vec()
            }
            _ => {
                // Append trailing garbage.
                let mut m = bytes.clone();
                m.extend_from_slice(&[flip; 3]);
                m
            }
        };
        if mutated != bytes {
            prop_assert!(Snapshot::from_bytes(&mutated).is_err());
        }
    }
}
