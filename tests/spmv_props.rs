//! Property-based validation of the generic SpMV front end (§3.5).

use pcpm::prelude::*;
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = SpmvMatrix> {
    ((1u32..80), (1u32..80)).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec((0..rows, 0..cols, -10i32..10), 0..400).prop_map(move |trip| {
            let trip: Vec<(u32, u32, f32)> = trip
                .into_iter()
                .map(|(r, c, v)| (r, c, v as f32 * 0.25))
                .collect();
            SpmvMatrix::from_triplets(rows, cols, &trip).expect("matrix")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pcpm_spmv_matches_reference(m in arb_matrix(), q in 1u32..40) {
        let cfg = PcpmConfig::default().with_partition_bytes(q as usize * 4);
        let mut engine = m.engine(&cfg).unwrap();
        let x: Vec<f32> = (0..m.num_cols()).map(|i| ((i % 7) as f32) - 3.0).collect();
        let mut y = vec![0.0f32; m.num_rows() as usize];
        engine.step(&x, &mut y).unwrap();
        let want = m.reference_apply(&x);
        for (i, (&a, &b)) in y.iter().zip(&want).enumerate() {
            prop_assert!((a - b).abs() < 1e-2 * b.abs().max(1.0), "row {}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn zero_vector_maps_to_zero(m in arb_matrix()) {
        let cfg = PcpmConfig::default().with_partition_bytes(64);
        let mut engine = m.engine(&cfg).unwrap();
        let x = vec![0.0f32; m.num_cols() as usize];
        let mut y = vec![7.0f32; m.num_rows() as usize];
        engine.step(&x, &mut y).unwrap();
        prop_assert!(y.iter().all(|&v| v == 0.0));
    }
}

#[test]
fn weighted_graph_pagerank_style_product() {
    // Weighted adjacency SpMV through the engine's weighted path must
    // match an explicit weighted reference.
    let g = pcpm::graph::gen::erdos_renyi(300, 2500, 4).unwrap();
    let w = EdgeWeights::random(&g, 11);
    let cfg = PcpmConfig::default().with_partition_bytes(64 * 4);
    let mut engine = Engine::<pcpm::core::algebra::PlusF32>::builder(&g)
        .config(cfg)
        .weights(&w)
        .build()
        .unwrap();
    let x: Vec<f32> = (0..300).map(|i| (i as f32 * 0.01).cos()).collect();
    let mut y = vec![0.0f32; 300];
    engine.step(&x, &mut y).unwrap();

    let mut want = vec![0.0f64; 300];
    let mut edge_idx = 0usize;
    for v in 0..g.num_nodes() {
        for &t in g.neighbors(v) {
            want[t as usize] += f64::from(w.as_slice()[edge_idx]) * f64::from(x[v as usize]);
            edge_idx += 1;
        }
    }
    for (i, (&a, &b)) in y.iter().zip(&want).enumerate() {
        assert!((f64::from(a) - b).abs() < 1e-4, "node {i}: {a} vs {b}");
    }
}

#[test]
fn identity_matrix_is_identity() {
    let n = 64u32;
    let trip: Vec<(u32, u32, f32)> = (0..n).map(|i| (i, i, 1.0)).collect();
    let m = SpmvMatrix::from_triplets(n, n, &trip).unwrap();
    let mut engine = m
        .engine(&PcpmConfig::default().with_partition_bytes(40))
        .unwrap();
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let mut y = vec![0.0f32; n as usize];
    engine.step(&x, &mut y).unwrap();
    assert_eq!(x, y);
}

#[test]
fn column_stochastic_preserves_mass() {
    // Each column sums to 1: ||Ax||_1 == ||x||_1 for non-negative x.
    let n = 100u32;
    let mut trip = Vec::new();
    for c in 0..n {
        trip.push(((c + 1) % n, c, 0.5f32));
        trip.push(((c + 7) % n, c, 0.5f32));
    }
    let m = SpmvMatrix::from_triplets(n, n, &trip).unwrap();
    let mut engine = m
        .engine(&PcpmConfig::default().with_partition_bytes(64))
        .unwrap();
    let x = vec![1.0f32 / n as f32; n as usize];
    let mut y = vec![0.0f32; n as usize];
    engine.step(&x, &mut y).unwrap();
    let mass: f32 = y.iter().sum();
    assert!((mass - 1.0).abs() < 1e-5, "mass {mass}");
}
