//! Step-output semantics: `Backend::step` **overwrites** the output
//! buffer (re-initializing it to the algebra's identity) — it never
//! accumulates into whatever the caller left there.
//!
//! The PageRank driver relies on this: `iterate` reuses one unzeroed
//! `sums` buffer across every iteration (`crates/core/src/pagerank.rs`),
//! which is only correct if every dataplane starts each round from the
//! identity. This suite poisons the buffer with garbage before each
//! step, for every `BackendKind` × bin format, the ablation variants,
//! the baseline runner engines and an integer algebra — turning the
//! driver's buffer reuse into an asserted contract instead of a silent
//! assumption.

use pcpm::core::algebra::{MinLabel, PlusF32};
use pcpm::core::engine::{GatherKind, ScatterKind};
use pcpm::prelude::*;

mod common;
use common::format_matrix;

fn int_x(n: u32) -> Vec<f32> {
    (0..n).map(|v| (v % 13) as f32).collect()
}

/// Steps `engine` twice — once into a clean buffer, once into a
/// poisoned one — and asserts bit-identical output.
fn assert_overwrites(name: &str, engine: &mut Engine<PlusF32>, x: &[f32], n: usize) {
    let mut clean = vec![0.0f32; n];
    engine.step(x, &mut clean).unwrap();
    // Garbage that would survive any "accumulate" bug: huge finite
    // values, negatives, and NaN (NaN + anything stays NaN, so even a
    // single read of the stale buffer would poison the output).
    for poison in [f32::MAX, -123.456, f32::NAN] {
        let mut y = vec![poison; n];
        engine.step(x, &mut y).unwrap();
        assert_eq!(
            clean.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{name}: step must overwrite a buffer poisoned with {poison}"
        );
    }
}

#[test]
fn every_backend_and_format_overwrites_the_output_buffer() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 13)).unwrap();
    let n = g.num_nodes() as usize;
    let x = int_x(g.num_nodes());
    for kind in BackendKind::ALL {
        let mut engine = Engine::<PlusF32>::builder(&g)
            .partition_bytes(64 * 4)
            .backend(kind)
            .build()
            .unwrap();
        assert_overwrites(kind.name(), &mut engine, &x, n);
    }
    for format in format_matrix() {
        let mut engine = Engine::<PlusF32>::builder(&g)
            .partition_bytes(64 * 4)
            .bin_format(format)
            .build()
            .unwrap();
        assert_overwrites(&format!("pcpm/{format}"), &mut engine, &x, n);
    }
    // Ablation variants route through different scatter/gather code.
    let mut csr = Engine::<PlusF32>::builder(&g)
        .partition_bytes(64 * 4)
        .scatter(ScatterKind::CsrTraversal)
        .build()
        .unwrap();
    assert_overwrites("pcpm/csr-traversal", &mut csr, &x, n);
    let mut branchy = Engine::<PlusF32>::builder(&g)
        .partition_bytes(64 * 4)
        .gather(GatherKind::Branchy)
        .build()
        .unwrap();
    assert_overwrites("pcpm/branchy", &mut branchy, &x, n);
}

#[test]
fn baseline_runner_engines_overwrite_the_output_buffer() {
    let g = pcpm::graph::gen::rmat(&RmatConfig::graph500(9, 8, 35)).unwrap();
    let n = g.num_nodes() as usize;
    let x = int_x(g.num_nodes());
    let cfg = PcpmConfig::default().with_partition_bytes(64 * 4);
    let engines = [
        ("pdpr", pcpm::baselines::pdpr_engine(&g, &cfg).unwrap()),
        ("bvgas", pcpm::baselines::bvgas_engine(&g, &cfg).unwrap()),
        (
            "edge_centric",
            pcpm::baselines::edge_centric_engine(&g, &cfg).unwrap(),
        ),
        ("grid", pcpm::baselines::grid_engine(&g, &cfg).unwrap()),
    ];
    for (name, mut engine) in engines {
        assert_overwrites(name, &mut engine, &x, n);
    }
}

#[test]
fn integer_algebras_overwrite_with_their_own_identity() {
    // MinLabel's identity is u32::MAX, not 0 — a backend that zeroed
    // the buffer instead of writing the identity would corrupt the
    // min-reduction just as surely as one that accumulated.
    let g = pcpm::graph::gen::erdos_renyi(300, 2400, 9).unwrap();
    let n = g.num_nodes() as usize;
    let x: Vec<u32> = (0..g.num_nodes()).collect();
    for kind in BackendKind::ALL {
        let mut engine = Engine::<MinLabel>::builder(&g)
            .partition_bytes(64 * 4)
            .backend(kind)
            .build()
            .unwrap();
        let mut clean = vec![0u32; n];
        engine.step(&x, &mut clean).unwrap();
        for poison in [0u32, 7, u32::MAX - 1] {
            let mut y = vec![poison; n];
            engine.step(&x, &mut y).unwrap();
            assert_eq!(clean, y, "{}: poisoned with {poison}", kind.name());
        }
    }
}

#[test]
fn snapshot_loaded_engines_keep_the_overwrite_contract() {
    // The rehydrated dataplane allocates a fresh scratch update stream;
    // its first step must still overwrite like a cold-built engine's.
    let g = std::sync::Arc::new(pcpm::graph::gen::rmat(&RmatConfig::graph500(8, 8, 3)).unwrap());
    let n = g.num_nodes() as usize;
    let x = int_x(g.num_nodes());
    let dir = std::env::temp_dir().join("pcpm_step_contract");
    std::fs::create_dir_all(&dir).unwrap();
    for format in format_matrix() {
        let path = dir.join(format!("contract-{format}.pcpmc"));
        Engine::<PlusF32>::builder_shared(&g)
            .partition_bytes(64 * 4)
            .bin_format(format)
            .build()
            .unwrap()
            .save_snapshot(&path)
            .unwrap();
        let mut engine = Engine::<PlusF32>::from_snapshot(&path).unwrap();
        assert_overwrites(&format!("snapshot/{format}"), &mut engine, &x, n);
    }
}
