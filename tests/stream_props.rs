//! Property-based validation of the streaming subsystem: across random
//! base graphs and random insert/delete batches, the incremental paths
//! (`DeltaGraph` overlay + `Engine::update` bin repair +
//! `incremental_pagerank`) must agree with a from-scratch rebuild +
//! cold `pagerank_on`.

use pcpm::core::algebra::PlusF32;
use pcpm::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// A random deduplicated base graph plus a stream of random op batches.
#[derive(Clone, Debug)]
struct Scenario {
    base: Csr,
    batches: Vec<Vec<EdgeUpdate>>,
    partition_nodes: u32,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (4u32..100, 1u32..24).prop_flat_map(|(n, q)| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..400);
        let ops = proptest::collection::vec(
            proptest::collection::vec((0u32..2, 0..n, 0..n), 1..40),
            1..5,
        );
        (edges, ops).prop_map(move |(edges, ops)| {
            let mut b = GraphBuilder::new(n).expect("builder");
            b.extend(edges);
            let base = b.build().expect("base");
            let batches = ops
                .into_iter()
                .map(|batch| {
                    batch
                        .into_iter()
                        .map(|(ins, src, dst)| EdgeUpdate {
                            op: if ins == 1 {
                                EdgeOp::Insert
                            } else {
                                EdgeOp::Delete
                            },
                            src,
                            dst,
                        })
                        .collect()
                })
                .collect();
            Scenario {
                base,
                batches,
                partition_nodes: q,
            }
        })
    })
}

/// Set-semantics oracle: applies ops in order to a HashSet edge set
/// (which is exactly last-op-wins).
fn oracle_apply(edges: &mut HashSet<(u32, u32)>, ops: &[EdgeUpdate]) {
    for u in ops {
        match u.op {
            EdgeOp::Insert => {
                edges.insert((u.src, u.dst));
            }
            EdgeOp::Delete => {
                edges.remove(&(u.src, u.dst));
            }
        }
    }
}

fn to_csr(n: u32, edges: &HashSet<(u32, u32)>) -> Csr {
    let mut list: Vec<(u32, u32)> = edges.iter().copied().collect();
    list.sort_unstable();
    Csr::from_edges(n, &list).expect("oracle graph")
}

fn stream_cfg(partition_nodes: u32) -> PcpmConfig {
    // 1e-8: tight enough that both solvers land within 1e-6 of the true
    // fixed point, loose enough that f32 rounding limit-cycles in the
    // power iteration cannot stall convergence.
    PcpmConfig::default()
        .with_partition_bytes(partition_nodes as usize * 4)
        .with_iterations(2000)
        .with_tolerance(1e-8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// DeltaGraph overlay == from-scratch rebuild, batch after batch,
    /// across every compaction policy.
    #[test]
    fn delta_graph_matches_rebuild(sc in arb_scenario(), policy in 0u32..3) {
        let n = sc.base.num_nodes();
        let threshold = match policy {
            0 => 0.0,           // compact every batch
            1 => f64::INFINITY, // never compact
            _ => 0.25,          // default-ish
        };
        let mut dg = DeltaGraph::new(Arc::new(sc.base.clone()), sc.partition_nodes)
            .expect("overlay")
            .with_compaction_threshold(threshold)
            .expect("threshold");
        let mut oracle: HashSet<(u32, u32)> = sc.base.edges().collect();
        for ops in &sc.batches {
            let batch = UpdateBatch::from_ops(ops);
            let stats = dg.apply(&batch).expect("apply");
            oracle_apply(&mut oracle, ops);
            let want = to_csr(n, &oracle);
            prop_assert_eq!(&*dg.snapshot(), &want);
            prop_assert_eq!(dg.num_edges(), want.num_edges());
            // The applied sub-batch covers exactly the effective diff.
            prop_assert_eq!(stats.applied.len() + stats.ignored, batch.len());
        }
    }

    /// `Engine::update` bin repair == fresh `prepare` over the same
    /// snapshot, on every PCPM bin format (wide, compact, delta).
    #[test]
    fn repaired_engine_matches_fresh_prepare(sc in arb_scenario(), format_sel in 0u32..3) {
        let format = BinFormatKind::ALL[format_sel as usize];
        let cfg = stream_cfg(sc.partition_nodes).with_bin_format(format);
        let mut engine = Engine::<PlusF32>::builder(&sc.base).config(cfg)
            .build().expect("engine");
        let mut dg = DeltaGraph::new(Arc::new(sc.base.clone()), sc.partition_nodes)
            .expect("overlay");
        let n = sc.base.num_nodes();
        let x: Vec<f32> = (0..n).map(|v| (v % 13) as f32).collect();
        for ops in &sc.batches {
            let stats = dg.apply(&UpdateBatch::from_ops(ops)).expect("apply");
            let snap = dg.snapshot();
            let outcome = engine.update(&snap, None, &stats.applied).expect("update");
            prop_assert!(matches!(outcome, UpdateOutcome::Repaired(_)));
            let mut fresh = Engine::<PlusF32>::builder_shared(&snap).config(cfg)
                .build().expect("fresh");
            let mut ya = vec![0.0f32; n as usize];
            let mut yb = vec![0.0f32; n as usize];
            engine.step(&x, &mut ya).expect("repaired step");
            fresh.step(&x, &mut yb).expect("fresh step");
            prop_assert_eq!(ya, yb);
        }
    }

    /// Incremental PageRank over the whole batch stream == from-scratch
    /// solve of the final graph, within 1e-6. The from-scratch side is
    /// an exact f64 oracle, so the bound cannot be masked by f32
    /// rounding limit-cycles in the engine's power iteration (the
    /// engine-vs-incremental agreement at realistic scale is asserted
    /// in `pcpm-algos` and the replay tests).
    #[test]
    fn incremental_pagerank_matches_cold(sc in arb_scenario()) {
        let cfg = stream_cfg(sc.partition_nodes);
        let mut dg = DeltaGraph::new(Arc::new(sc.base.clone()), sc.partition_nodes)
            .expect("overlay");
        let mut scores: Vec<f32> = oracle_pagerank(&sc.base, cfg.damping)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        for ops in &sc.batches {
            let stats = dg.apply(&UpdateBatch::from_ops(ops)).expect("apply");
            let snap = dg.snapshot();
            let warm = incremental_pagerank(&snap, &stats.applied, &scores, &cfg)
                .expect("incremental");
            prop_assert!(warm.converged);
            scores = warm.scores;
        }
        let want = oracle_pagerank(&dg.snapshot(), cfg.damping);
        for (v, (&a, &b)) in scores.iter().zip(&want).enumerate() {
            prop_assert!(
                (f64::from(a) - b).abs() < 1e-6,
                "node {}: incremental {} vs oracle {}", v, a, b
            );
        }
    }
}

/// Serial f64 PageRank with the paper's dangling-drop convention, run
/// to a 1e-13 L1 delta — effectively the exact fixed point.
fn oracle_pagerank(g: &Csr, damping: f64) -> Vec<f64> {
    let n = g.num_nodes() as usize;
    if n == 0 {
        return vec![];
    }
    let out_deg = g.out_degrees();
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..20_000 {
        let mut sums = vec![0.0f64; n];
        for (s, t) in g.edges() {
            sums[t as usize] += pr[s as usize] / f64::from(out_deg[s as usize]);
        }
        let mut delta = 0.0f64;
        for v in 0..n {
            let new = (1.0 - damping) / n as f64 + damping * sums[v];
            delta += (new - pr[v]).abs();
            pr[v] = new;
        }
        if delta < 1e-13 {
            break;
        }
    }
    pr
}

// ---------------------------------------------------------------------------
// PR-3: the PR-2 streaming invariants re-proven under concurrency. The
// repair paths run on a real multi-threaded pool and must (a) equal a
// from-scratch prepare and (b) be bit-identical to the 1-thread repair.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Engine::update` (Png::repair + the format's `BinFormat::repair`
    /// underneath) on a 4-thread engine: step output equals a fresh
    /// prepare over the same snapshot AND the 1-thread repaired engine,
    /// bit for bit — for every bin format, `DeltaPackedBins` included
    /// (repair ≡ fresh build under a multi-threaded pool).
    #[test]
    fn repair_under_multithreaded_pool_matches_scratch(sc in arb_scenario(), format_sel in 0u32..3) {
        let format = BinFormatKind::ALL[format_sel as usize];
        let cfg = stream_cfg(sc.partition_nodes).with_bin_format(format);
        let build = |threads: usize, g: &Csr| {
            Engine::<PlusF32>::builder(g).config(cfg).threads(threads)
                .build().expect("engine")
        };
        let mut par_engine = build(4, &sc.base);
        let mut serial_engine = build(1, &sc.base);
        let mut dg = DeltaGraph::new(Arc::new(sc.base.clone()), sc.partition_nodes)
            .expect("overlay");
        let n = sc.base.num_nodes();
        let x: Vec<f32> = (0..n).map(|v| (v % 13) as f32).collect();
        for ops in &sc.batches {
            let stats = dg.apply(&UpdateBatch::from_ops(ops)).expect("apply");
            let snap = dg.snapshot();
            prop_assert!(matches!(
                par_engine.update(&snap, None, &stats.applied).expect("par update"),
                UpdateOutcome::Repaired(_)
            ));
            prop_assert!(matches!(
                serial_engine.update(&snap, None, &stats.applied).expect("serial update"),
                UpdateOutcome::Repaired(_)
            ));
            let mut fresh = Engine::<PlusF32>::builder_shared(&snap)
                .config(cfg)
                .threads(4)
                .build()
                .expect("fresh");
            let mut y_par = vec![0.0f32; n as usize];
            let mut y_serial = vec![0.0f32; n as usize];
            let mut y_fresh = vec![0.0f32; n as usize];
            par_engine.step(&x, &mut y_par).expect("par step");
            serial_engine.step(&x, &mut y_serial).expect("serial step");
            fresh.step(&x, &mut y_fresh).expect("fresh step");
            prop_assert_eq!(&y_par, &y_serial, "4-thread repair != 1-thread repair");
            prop_assert_eq!(&y_par, &y_fresh, "repair != from-scratch prepare");
        }
    }

    /// `Png::repair` driven directly inside a 4-thread pool: the repaired
    /// layout must equal a from-scratch `Png::build` partition by
    /// partition, and the bins rebuilt over it must carry identical
    /// destination-ID streams.
    #[test]
    fn png_repair_on_pool_matches_scratch_build(sc in arb_scenario()) {
        use pcpm::core::format::{BinFormat, WideFormat};
        use pcpm::core::partition::Partitioner;
        use pcpm::core::png::{EdgeView, Png};

        let n = sc.base.num_nodes();
        let parts = Partitioner::new(n, sc.partition_nodes).expect("partitioner");
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut png = pool.install(|| {
            Png::build(EdgeView::from_csr(&sc.base), parts, parts)
        });
        let mut oracle: HashSet<(u32, u32)> = sc.base.edges().collect();
        for ops in &sc.batches {
            let batch = UpdateBatch::from_ops(ops);
            oracle_apply(&mut oracle, ops);
            let g2 = to_csr(n, &oracle);
            let touched = batch.touched_src_partitions(sc.partition_nodes);
            pool.install(|| png.repair(EdgeView::from_csr(&g2), &touched));
            let fresh = Png::build(EdgeView::from_csr(&g2), parts, parts);
            prop_assert_eq!(png.upd_region(), fresh.upd_region());
            prop_assert_eq!(png.did_region(), fresh.did_region());
            for s in parts.iter() {
                prop_assert_eq!(png.part(s), fresh.part(s), "partition {} differs", s);
            }
            let bins = pool.install(|| {
                WideFormat::build::<f32>(EdgeView::from_csr(&g2), &png, None)
            });
            let fresh_bins = WideFormat::build::<f32>(EdgeView::from_csr(&g2), &fresh, None);
            prop_assert_eq!(&bins.dest_ids, &fresh_bins.dest_ids);
        }
    }
}
