//! Integration tests for the workspace telemetry layer: engine-level
//! counters and span tracing driven through real runs, across all three
//! bin formats.
//!
//! The telemetry registry is process-global, so every test here takes
//! the same lock before touching it — parallel test threads must not
//! interleave enable/reset/snapshot cycles.

use pcpm::core::algebra::PlusF32;
use pcpm::core::telemetry;
use pcpm::core::BinFormatKind;
use pcpm::prelude::*;

static REGISTRY: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock_registry() -> std::sync::MutexGuard<'static, ()> {
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

fn test_graph() -> Csr {
    pcpm::graph::gen::erdos_renyi(2000, 16000, 5).unwrap()
}

fn cfg(format: BinFormatKind) -> PcpmConfig {
    PcpmConfig::default()
        .with_partition_bytes(4096)
        .with_bin_format(format)
}

const STEPS: usize = 4;

fn run_steps(graph: &Csr, format: BinFormatKind) -> ExecutionReport {
    let mut engine = Engine::<PlusF32>::builder(graph)
        .config(cfg(format))
        .build()
        .unwrap();
    let x: Vec<f32> = (0..graph.num_nodes()).map(|v| (v % 7) as f32).collect();
    let mut y = vec![0.0f32; graph.num_nodes() as usize];
    for _ in 0..STEPS {
        engine.step(&x, &mut y).unwrap();
    }
    engine.report()
}

#[test]
fn counters_record_all_formats_and_disabled_path_stays_silent() {
    let _guard = lock_registry();
    let graph = test_graph();
    let tm = telemetry::counters();

    for format in BinFormatKind::ALL {
        // Disabled: a full run must record exactly nothing.
        tm.set_enabled(false);
        tm.reset();
        let report = run_steps(&graph, format);
        assert_eq!(
            tm.snapshot().total(),
            0,
            "disabled telemetry recorded traffic for {format}"
        );

        // The report carries the dest-stream accounting regardless of
        // the telemetry switch — it comes from the pipeline itself.
        let per_step = report.dest_stream_bytes.expect("pcpm reports stream bytes");
        assert!(per_step > 0);
        assert_eq!(
            report.dest_stream_total_bytes(),
            Some(per_step * STEPS as u64)
        );
        let gbps = report.dest_stream_gbps().expect("steps ran, gather timed");
        assert!(gbps > 0.0, "effective bandwidth must be positive");

        // Enabled: the same run must record the analytically known
        // quantities.
        tm.set_enabled(true);
        tm.reset();
        let report = run_steps(&graph, format);
        tm.set_enabled(false);
        let snap = tm.snapshot();
        assert_eq!(
            snap.dest_stream_bytes_read,
            report.dest_stream_bytes.unwrap() * STEPS as u64,
            "{format}: counter must match the report's per-step bytes x steps"
        );
        assert!(snap.bins_decoded > 0, "{format}: bins_decoded");
        assert!(snap.scatter_ns > 0, "{format}: scatter_ns");
        assert!(snap.gather_ns > 0, "{format}: gather_ns");
        if format == BinFormatKind::Delta {
            assert!(snap.varint_decodes > 0, "delta pays a varint per edge");
        } else {
            assert_eq!(snap.varint_decodes, 0, "{format} decodes no varints");
        }
    }
}

#[test]
fn wide_stream_is_strictly_larger_than_compact_and_delta() {
    let _guard = lock_registry();
    let graph = test_graph();
    let bytes: Vec<u64> = BinFormatKind::ALL
        .iter()
        .map(|&f| run_steps(&graph, f).dest_stream_bytes.unwrap())
        .collect();
    // ALL is [wide, compact, delta]: wide pays 4 B/edge, compact 2,
    // delta ~1-2 — the paper's compression argument in one assert.
    assert!(
        bytes[1] < bytes[0] && bytes[2] < bytes[0],
        "wide must carry the largest dest stream: {bytes:?}"
    );
}

#[test]
fn pool_diagnostics_fold_into_the_report() {
    let _guard = lock_registry();
    let graph = test_graph();
    let mut engine = Engine::<PlusF32>::builder(&graph)
        .config(cfg(BinFormatKind::Wide).with_threads(2))
        .build()
        .unwrap();
    let x = vec![1.0f32; graph.num_nodes() as usize];
    let mut y = vec![0.0f32; graph.num_nodes() as usize];
    for _ in 0..3 {
        engine.step(&x, &mut y).unwrap();
    }
    let report = engine.report();
    assert!(
        report.pool_jobs_dispatched > 0,
        "an engine-owned pool must dispatch jobs"
    );
}

#[test]
fn trace_spans_from_a_real_run_nest_and_serialize() {
    let _guard = lock_registry();
    let graph = test_graph();
    telemetry::start_tracing();
    let _ = run_steps(&graph, BinFormatKind::Delta);
    let events = telemetry::stop_tracing();

    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    for expected in ["prepare", "step", "scatter", "gather"] {
        assert!(
            names.contains(&expected),
            "missing span {expected:?} in {names:?}"
        );
    }
    let steps = events.iter().filter(|e| e.name == "step").count();
    assert_eq!(steps, STEPS);
    // scatter/gather spans nest inside their step span.
    let step = events.iter().find(|e| e.name == "step").unwrap();
    let scatter = events
        .iter()
        .find(|e| e.name == "scatter" && e.ts_us >= step.ts_us)
        .unwrap();
    assert!(scatter.ts_us + scatter.dur_us <= step.ts_us + step.dur_us + 1);

    // The Chrome-trace JSON round-trips through a strict parser shape:
    // starts as an array, one object per span, required keys present.
    let json = telemetry::chrome_trace_json(&events);
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    assert_eq!(json.matches("\"ph\":\"X\"").count(), events.len());
    assert_eq!(json.matches("\"pid\":1").count(), events.len());
}

#[test]
fn replay_batches_emit_spans() {
    let _guard = lock_registry();
    let graph = std::sync::Arc::new(test_graph());
    let batches = gen_updates(
        &graph,
        &UpdateGenConfig {
            batches: 3,
            batch_size: 40,
            delete_frac: 0.3,
            locality: None,
            seed: 9,
        },
    )
    .unwrap();
    telemetry::start_tracing();
    let rc = ReplayConfig {
        cfg: cfg(BinFormatKind::Wide).with_iterations(10),
        backend: BackendKind::Pcpm,
        compaction_threshold: 1.0,
        verify: false,
        cache: None,
    };
    replay(std::sync::Arc::clone(&graph), &batches, &rc).unwrap();
    let events = telemetry::stop_tracing();
    let replay_spans: Vec<_> = events.iter().filter(|e| e.name == "replay_batch").collect();
    assert_eq!(replay_spans.len(), 3, "one span per replayed batch");
    // Batch indices ride along as the span arg, in order.
    let args: Vec<Option<u64>> = replay_spans.iter().map(|e| e.arg).collect();
    assert_eq!(args, vec![Some(0), Some(1), Some(2)]);
}
